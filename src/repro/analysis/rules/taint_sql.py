"""TAINT-SQL: untrusted strings must not reach SQL execution unguarded.

Whole-program taint analysis over the conservative call graph in
:mod:`repro.analysis.graph`:

* **Sources** — every function defined in the modules that parse
  external input (HTTP request bodies, cluster IPC frames) or produce
  model output (the decoder — generated SQL is untrusted by
  construction), plus any function carrying a verified
  ``# taint: source`` annotation (used where a queue or thread hand-off
  breaks the static call chain).  Direct *callers* of a source are also
  tainted: the caller receives the untrusted return value.

* **Propagation** — taint flows from a tainted function to every
  project function it may call, transitively.  It does **not** flow
  through a *verified* sanitizer or trusted function (see below).

* **Sinks** — any ``*.execute(...)`` / ``*.executemany(...)`` /
  ``*.executescript(...)`` call whose first argument is not a plain
  string constant.  A sink inside a tainted function is a violation.

* **Annotations** — ``# taint:`` comments quiet the rule, but every
  annotation is *verified* against the AST rather than trusted:

  - ``# taint: sanitizer via <callee> (reason)`` on a ``def`` declares
    the function a taint barrier *because it calls* ``<callee>`` (or
    raises, for ``via raise``).  Verified iff the body really contains
    that call / a ``raise``.  A verified sanitizer's own sinks are
    considered guarded and taint does not propagate past it.  Delete
    the guarding call and the annotation fails verification — the
    barrier collapses and every downstream sink lights up (this is the
    mutation check in ``tests/test_analysis_program.py``).

  - ``# taint: trusted (reason)`` on a ``def`` declares that the
    function builds its SQL from schema metadata, not from its inputs.
    Verified iff no sink's first argument contains a bare parameter of
    the function (attribute projections like ``column.name`` and
    numeric coercions like ``int(limit)`` are allowed; assignments are
    followed so ``sql = param`` does not dodge the check).

  - ``# taint: sink (reason)`` on a sink call line marks an accepted,
    reviewed sink (e.g. the offline evaluation harness).  Verified iff
    the line really holds a sink call, a reason is given, and the file
    is not itself a source module.

  - ``# taint: source (reason)`` on a ``def`` adds a source seed.

  Unverified or unparseable annotations are themselves violations.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.core import Rule, Violation
from repro.analysis.graph import FunctionInfo, ProjectContext

#: Modules whose every function is a taint source (parse external bytes
#: or emit generated SQL).
SOURCE_MODULES = {
    "repro.serving.routes",
    "repro.serving.http",
    "repro.serving.async_http",
    "repro.cluster.protocol",
    "repro.model.valuenet",
}

_SINK_ATTRS = {"execute", "executemany", "executescript"}

#: Pure numeric/size coercions: a parameter passed through these cannot
#: smuggle SQL text into the statement.
_COERCIONS = {"int", "float", "bool", "len"}


def _sink_calls(fn: FunctionInfo) -> list[ast.Call]:
    """Sink-shaped calls in ``fn`` whose SQL argument is not a constant."""
    sinks = []
    for call in fn.calls:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SINK_ATTRS):
            continue
        if not call.args:
            continue
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            continue
        sinks.append(call)
    return sinks


class TaintSqlRule(Rule):
    name = "TAINT-SQL"
    description = (
        "untrusted input (HTTP, IPC, model output) must pass a verified "
        "sanitizer before reaching SQL execution"
    )
    requires_project = True

    def check_project(self, project: ProjectContext) -> list[Violation]:
        violations: list[Violation] = []
        barriers: set[str] = set()   # fids whose sinks are guarded
        sources: set[str] = set()

        # --- 1. verify every annotation; collect barriers and sources.
        for fn in project.functions.values():
            ann = fn.annotation
            if ann is None:
                if fn.module in SOURCE_MODULES:
                    sources.add(fn.fid)
                continue
            if not ann.reason:
                violations.append(self._violation(
                    fn.ctx, ann.line,
                    f"`# taint: {ann.kind}` annotation without a reason — "
                    f"write `# taint: {ann.kind} (why)`",
                ))
            if ann.kind == "source":
                sources.add(fn.fid)
            elif ann.kind == "sanitizer":
                if self._sanitizer_verified(fn, ann.via):
                    barriers.add(fn.fid)
                else:
                    violations.append(self._violation(
                        fn.ctx, fn.line,
                        f"sanitizer annotation on {fn.qualname!r} not "
                        f"verified: no "
                        + ("`raise` found in the body"
                           if ann.via == "raise"
                           else f"call to {ann.via!r} found in the body")
                        + " — the declared barrier does not exist",
                    ))
            elif ann.kind == "trusted":
                bad = self._trusted_offender(fn)
                if bad is None:
                    barriers.add(fn.fid)
                else:
                    line, param = bad
                    violations.append(self._violation(
                        fn.ctx, line,
                        f"trusted annotation on {fn.qualname!r} not "
                        f"verified: parameter {param!r} flows into the "
                        f"SQL argument of a sink call",
                    ))
            elif ann.kind == "sink":
                violations.append(self._violation(
                    fn.ctx, ann.line,
                    "`# taint: sink` belongs on the sink call line, not "
                    "on a `def`",
                ))
            if fn.module in SOURCE_MODULES:
                sources.add(fn.fid)

        # --- 2. taint closure: sources, their direct callers, then
        #        everything reachable callee-wards — stopping at barriers.
        #        Sink-shaped calls (``*.execute(...)``) never propagate
        #        taint through name matching: they are judged at the
        #        call site in pass 3, and letting ``connection.execute``
        #        on a raw sqlite3 connection taint every project method
        #        named ``execute`` would only manufacture noise.
        def propagating_callees(fn: FunctionInfo, call: ast.Call):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in _SINK_ATTRS:
                return []
            return project.resolve_call(call, fn.module)

        tainted = set(sources)
        for fn in project.functions.values():
            for call in fn.calls:
                if any(
                    callee.fid in sources
                    for callee in propagating_callees(fn, call)
                ):
                    tainted.add(fn.fid)
        queue = deque(tainted - barriers)
        while queue:
            fid = queue.popleft()
            fn = project.functions[fid]
            for call in fn.calls:
                for callee in propagating_callees(fn, call):
                    if callee.fid in tainted:
                        continue
                    tainted.add(callee.fid)
                    if callee.fid not in barriers:
                        queue.append(callee.fid)

        # --- 3. sinks inside tainted, unguarded functions.
        used_sink_lines: set[tuple[str, int]] = set()
        for fn in project.functions.values():
            for call in _sink_calls(fn):
                key = (fn.path, call.lineno)
                ann = project.line_annotations.get(key)
                if ann is not None and ann.kind == "sink":
                    used_sink_lines.add(key)
                    if not ann.reason:
                        violations.append(self._violation(
                            fn.ctx, call.lineno,
                            "`# taint: sink` without a reason — write "
                            "`# taint: sink (why this sink is accepted)`",
                        ))
                    elif fn.module in SOURCE_MODULES:
                        violations.append(self._violation(
                            fn.ctx, call.lineno,
                            "`# taint: sink` is not allowed inside a "
                            "source module — move SQL execution out of "
                            f"{fn.module}",
                        ))
                    continue
                if fn.fid in tainted and fn.fid not in barriers:
                    violations.append(self._violation(
                        fn.ctx, call.lineno,
                        f"tainted SQL reaches {ast.unparse(call.func)}() in "
                        f"{fn.qualname!r} without passing a verified "
                        f"sanitizer (PolicyEngine.check / "
                        f"execute_with_budget) — route it through the "
                        f"budgeted executor or annotate and justify",
                    ))

        # --- 4. stale sink annotations: marked lines with no sink call.
        for (path, line), ann in project.line_annotations.items():
            if ann.kind != "sink" or (path, line) in used_sink_lines:
                continue
            ctx = project.contexts.get(path)
            if ctx is None:
                continue
            # Line annotations on defs were consumed in pass 1.
            if any(
                fn.annotation is not None and fn.annotation.line == line
                for fn in project.functions_in_path(path)
            ):
                continue
            violations.append(self._violation(
                ctx, line,
                "stale `# taint: sink` annotation: no SQL execution call "
                "on this line",
            ))
        return violations

    # ------------------------------------------------------- verification

    @staticmethod
    def _sanitizer_verified(fn: FunctionInfo, via: str | None) -> bool:
        if via is None:
            return False
        if via == "raise":
            return any(
                isinstance(node, ast.Raise) for node in ast.walk(fn.node)
            )
        for call in fn.calls:
            func = call.func
            if isinstance(func, ast.Name) and func.id == via:
                return True
            if isinstance(func, ast.Attribute) and func.attr == via:
                return True
        return False

    @staticmethod
    def _trusted_offender(fn: FunctionInfo) -> tuple[int, str] | None:
        """(line, param) of a parameter leaking into a sink, else None."""
        params = set(fn.params()) - {"self", "cls"}
        # local name -> the parameter it (transitively) leaks.
        leaked: dict[str, str] = {}

        def offenders(expr: ast.AST) -> set[str]:
            """Parameters whose *text* could reach ``expr``'s value.

            Attribute projections (``column.name``), call targets, and
            arguments to pure numeric coercions (``int(limit)``) derive
            *from* the parameter but cannot carry its text — skip them.
            Locals already known to leak a parameter count as that
            parameter.
            """
            found: set[str] = set()
            skip: set[ast.AST] = set()
            for node in ast.walk(expr):
                if node in skip:
                    continue
                if isinstance(node, ast.Attribute):
                    for inner in ast.walk(node.value):
                        skip.add(inner)
                elif isinstance(node, ast.Call):
                    for inner in ast.walk(node.func):
                        skip.add(inner)
                    if (
                        isinstance(node.func, ast.Name)
                        and node.func.id in _COERCIONS
                    ):
                        for arg in node.args:
                            for inner in ast.walk(arg):
                                skip.add(inner)
                elif isinstance(node, ast.Name):
                    if node.id in params:
                        found.add(node.id)
                    elif node.id in leaked:
                        found.add(leaked[node.id])
            return found

        # Fixpoint over assignments: ``sql = param`` (or any chain of
        # renames/concatenations) marks the local as leaking.
        changed = True
        while changed:
            changed = False
            for node in ast.walk(fn.node):
                if not isinstance(node, (ast.Assign, ast.AugAssign)):
                    continue
                names = offenders(node.value)
                if not names:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id not in leaked:
                        leaked[target.id] = sorted(names)[0]
                        changed = True

        for call in _sink_calls(fn):
            bad = offenders(call.args[0])
            if bad:
                return call.lineno, sorted(bad)[0]
        return None

    def _violation(self, ctx, line: int, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.logical_path,
            line=line,
            message=message,
            source_line=ctx.source_line(line),
        )
