"""LOCK-GUARD: annotated fields may only be touched under their lock.

Annotation syntax — a comment on the line where the field is first
assigned::

    self._entries: dict[str, Entry] = {}  # guarded by: _lock
    _default_registry = None  # guarded by: _default_lock

Every later access to that attribute (``<recv>._entries``) anywhere in
the same file must then sit inside ``with <recv>._lock:`` — the guard
is matched against the *same receiver expression* as the access, so
``handle.pending`` requires ``with handle.pending_lock:`` while
``self.pending`` requires ``with self.pending_lock:``.  Module-level
names annotated the same way must be accessed under ``with <lock>:``.

Exemptions, because they are how the codebase already expresses
"caller holds the lock":

* statements inside ``__init__`` (construction precedes sharing);
* functions whose name ends in ``_locked`` (the convention that the
  caller acquires);
* the annotation line itself.

The ``with`` lookup stops at the enclosing function boundary: a nested
function does not inherit its parent's critical section, because it may
run on another thread (that is exactly the bug class this rule exists
to catch).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.core import FileContext, Rule, Violation

_GUARD_RE = re.compile(r"guarded by:\s*(?P<lock>\w+)")


def _with_guards(ctx: FileContext, node: ast.AST) -> set[str]:
    """Unparsed context expressions of all ``with`` blocks around ``node``
    inside the enclosing function (or module, if at top level)."""
    guards: set[str] = set()
    for anc in ctx.ancestors(node):
        if isinstance(anc, (ast.With, ast.AsyncWith)):
            for item in anc.items:
                guards.add(ast.unparse(item.context_expr))
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return guards


class LockGuardRule(Rule):
    name = "LOCK-GUARD"
    description = (
        "fields annotated `# guarded by: <lock>` may only be accessed "
        "inside a matching `with` block"
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        attr_guards: dict[str, str] = {}  # attribute name -> lock name
        name_guards: dict[str, str] = {}  # module-level name -> lock name
        annotation_lines: set[int] = set()

        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            match = _GUARD_RE.search(ctx.comment_on(node.lineno))
            if match is None:
                continue
            lock = match.group("lock")
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Attribute):
                    attr_guards[target.attr] = lock
                elif isinstance(target, ast.Name):
                    name_guards[target.id] = lock
            annotation_lines.add(node.lineno)

        if not attr_guards and not name_guards:
            return []

        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in attr_guards:
                if node.lineno in annotation_lines:
                    continue
                if self._exempt(ctx, node):
                    continue
                receiver = ast.unparse(node.value)
                expected = f"{receiver}.{attr_guards[node.attr]}"
                if expected not in _with_guards(ctx, node):
                    violations.append(self._violation(ctx, node, node.attr, expected))
            elif isinstance(node, ast.Name) and node.id in name_guards:
                if node.lineno in annotation_lines:
                    continue
                if self._exempt(ctx, node):
                    continue
                expected = name_guards[node.id]
                if expected not in _with_guards(ctx, node):
                    violations.append(self._violation(ctx, node, node.id, expected))
        return violations

    @staticmethod
    def _exempt(ctx: FileContext, node: ast.AST) -> bool:
        func = ctx.enclosing_function(node)
        if func is None:
            return False
        return func.name == "__init__" or func.name.endswith("_locked")

    def _violation(
        self, ctx: FileContext, node: ast.AST, field: str, expected: str
    ) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.logical_path,
            line=node.lineno,
            message=(
                f"`{field}` is lock-guarded but accessed outside "
                f"`with {expected}:`"
            ),
            source_line=ctx.source_line(node.lineno),
        )
