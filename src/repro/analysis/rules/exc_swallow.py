"""EXC-SWALLOW: a broad `except` must re-raise, count, or justify.

A bare ``except:``, ``except Exception:`` or ``except BaseException:``
that quietly eats the error is how a worker thread dies with a request
still unresolved, or how a corrupt index loads as "empty".  The handler
is compliant if it does at least one of:

* re-raise (any ``raise`` inside the handler body);
* record the failure — increment an error counter (``.inc(...)``),
  observe a histogram, or log at warning level or above
  (``.exception(...)``, ``.error(...)``, ``.warning(...)``,
  ``.critical(...)``);
* carry ``# justified: <reason>`` on the ``except`` line, for handlers
  whose swallowing is the designed behavior (e.g. best-effort cleanup).

Narrow excepts (``except OSError:``) are out of scope — catching a
specific exception is a statement of intent.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation

_RECORDING_ATTRS = {"inc", "observe", "exception", "error", "warning", "critical"}
_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    exprs = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for expr in exprs:
        if isinstance(expr, ast.Name) and expr.id in _BROAD_NAMES:
            return True
        if isinstance(expr, ast.Attribute) and expr.attr in _BROAD_NAMES:
            return True
    return False


def _handles_it(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RECORDING_ATTRS
            ):
                return True
    return False


class ExcSwallowRule(Rule):
    name = "EXC-SWALLOW"
    description = (
        "every broad `except` must re-raise, record an error "
        "metric/log, or carry `# justified: <reason>`"
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler) or not _is_broad(node):
                continue
            if _handles_it(node):
                continue
            if ctx.justification_on(node.lineno) is not None:
                continue
            violations.append(
                Violation(
                    rule=self.name,
                    path=ctx.logical_path,
                    line=node.lineno,
                    message=(
                        "broad `except` swallows the error — re-raise, "
                        "record an error metric/log, or add "
                        "`# justified: <reason>`"
                    ),
                    source_line=ctx.source_line(node.lineno),
                )
            )
        return violations
