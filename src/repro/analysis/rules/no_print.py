"""NO-PRINT: library code never prints; output goes through logging.

``print()`` in a library module writes to whatever stdout happens to be
— invisible in a supervised worker process, interleaved garbage under
concurrency, and unconditionally on even when the caller asked for
quiet.  Library code routes through :mod:`repro.logs`; only entry
points own the terminal.

Exempt: any file named ``__main__.py`` and anything under a
``scripts/`` or ``benchmarks/`` directory — those *are* the terminal.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation

_EXEMPT_BASENAMES = {"__main__.py"}
_EXEMPT_DIRS = {"scripts", "benchmarks"}


class NoPrintRule(Rule):
    name = "NO-PRINT"
    description = (
        "no `print()` outside `__main__`/scripts — library code logs "
        "via repro.logs"
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        parts = ctx.logical_path.split("/")
        if parts[-1] in _EXEMPT_BASENAMES:
            return []
        if any(part in _EXEMPT_DIRS for part in ctx.path.parts):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                violations.append(
                    Violation(
                        rule=self.name,
                        path=ctx.logical_path,
                        line=node.lineno,
                        message=(
                            "`print()` in library code — use "
                            "`repro.logs.get_logger(__name__)`"
                        ),
                        source_line=ctx.source_line(node.lineno),
                    )
                )
        return violations
