"""METRICS-REG: one name, one kind, and the naming convention holds.

The metrics registry recovers a counter's kind from its ``_total``
suffix when rendering the Prometheus exposition
(``render_snapshot_text``), and cluster supervisors merge worker
snapshots by name.  Both break silently if the same metric name is ever
registered as two different kinds, or if a counter is named without the
``_total`` suffix (it would render as a gauge).  This rule catches both
at lint time:

* **kind collision** (cross-file): ``counter("x")`` in one module and
  ``histogram("x")`` in another;
* **naming**: counters must end in ``_total``; gauges and histograms
  must not.

Only literal-string registrations are checked — a dynamic name can't be
analyzed statically and is better avoided anyway.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation

_KINDS = {"counter", "gauge", "histogram"}


class MetricsRegRule(Rule):
    name = "METRICS-REG"
    description = (
        "metric names register once with a stable kind; counters end in "
        "`_total`, gauges/histograms do not"
    )

    def __init__(self) -> None:
        # name -> list of (kind, logical_path, line, source_line)
        self._sites: dict[str, list[tuple[str, str, int, str]]] = {}

    def check_file(self, ctx: FileContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _KINDS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                continue
            kind = node.func.attr
            metric = node.args[0].value
            src = ctx.source_line(node.lineno)
            self._sites.setdefault(metric, []).append(
                (kind, ctx.logical_path, node.lineno, src)
            )
            ends_total = metric.endswith("_total")
            if kind == "counter" and not ends_total:
                violations.append(
                    Violation(
                        rule=self.name,
                        path=ctx.logical_path,
                        line=node.lineno,
                        message=(
                            f"counter {metric!r} must end in `_total` — the "
                            "exposition renderer recovers kind from the suffix"
                        ),
                        source_line=src,
                    )
                )
            elif kind != "counter" and ends_total:
                violations.append(
                    Violation(
                        rule=self.name,
                        path=ctx.logical_path,
                        line=node.lineno,
                        message=(
                            f"{kind} {metric!r} must not end in `_total` — it "
                            "would render as a counter"
                        ),
                        source_line=src,
                    )
                )
        return violations

    def finalize(self) -> list[Violation]:
        violations: list[Violation] = []
        for metric, sites in sorted(self._sites.items()):
            kinds = {kind for kind, _, _, _ in sites}
            if len(kinds) <= 1:
                continue
            detail = ", ".join(
                f"{kind} at {path}:{line}" for kind, path, line, _ in sites
            )
            for kind, path, line, src in sites:
                violations.append(
                    Violation(
                        rule=self.name,
                        path=path,
                        line=line,
                        message=(
                            f"metric {metric!r} registered with conflicting "
                            f"kinds ({detail})"
                        ),
                        source_line=src,
                    )
                )
        return violations
