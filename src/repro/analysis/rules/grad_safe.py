"""GRAD-SAFE: backward closures must be gated on the grad flag.

Every op in :mod:`repro.nn` that assigns ``out._backward = backward``
captures its operand tensors in that closure.  Under
``inference_mode()`` the thread-local grad flag turns ``requires_grad``
off precisely so those closures are never allocated — a serving process
that leaks one per request grows without bound.  This rule checks that
each ``._backward = ...`` assignment is reachable only when
``requires_grad`` is known true, via any of the codebase's three
established idioms:

1. early-out guard earlier in the same function::

       if not out.requires_grad:
           return out
       out._backward = backward

2. an enclosing conditional::

       if out.requires_grad:
           out._backward = backward

3. a conditional expression::

       self._backward = backward if self.requires_grad else None

Scope: files under ``repro/nn/`` only.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, Violation


def _mentions_requires_grad(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "requires_grad"
        for sub in ast.walk(node)
    )


def _guarded_by_early_out(ctx: FileContext, assign: ast.Assign) -> bool:
    func = ctx.enclosing_function(assign)
    if func is None:
        return False
    for stmt in ast.walk(func):
        if not isinstance(stmt, ast.If) or stmt.lineno >= assign.lineno:
            continue
        if not _mentions_requires_grad(stmt.test):
            continue
        if any(
            isinstance(s, (ast.Return, ast.Raise))
            for body_stmt in stmt.body
            for s in ast.walk(body_stmt)
        ):
            return True
    return False


def _guarded_by_enclosing_if(ctx: FileContext, assign: ast.Assign) -> bool:
    for anc in ctx.ancestors(assign):
        if isinstance(anc, ast.If) and _mentions_requires_grad(anc.test):
            return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


class GradSafeRule(Rule):
    name = "GRAD-SAFE"
    description = (
        "every repro.nn op that allocates a backward closure must gate "
        "on the thread-local grad flag (`requires_grad`)"
    )

    def check_file(self, ctx: FileContext) -> list[Violation]:
        if not ctx.logical_path.startswith("repro/nn/"):
            return []
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Attribute) and t.attr == "_backward"
                for t in node.targets
            ):
                continue
            if isinstance(node.value, ast.IfExp) and _mentions_requires_grad(
                node.value.test
            ):
                continue
            if _guarded_by_enclosing_if(ctx, node):
                continue
            if _guarded_by_early_out(ctx, node):
                continue
            violations.append(
                Violation(
                    rule=self.name,
                    path=ctx.logical_path,
                    line=node.lineno,
                    message=(
                        "`._backward` assigned without a `requires_grad` "
                        "gate — closure leaks under inference_mode()"
                    ),
                    source_line=ctx.source_line(node.lineno),
                )
            )
        return violations
