"""Whole-program view: module/import graph + conservative call graph.

The per-file rules in :mod:`repro.analysis.rules` see one
:class:`~repro.analysis.core.FileContext` at a time; the whole-program
rules (TAINT-SQL, LAYERING, DEADLINE-PROP) need to reason about the
*edges between* files.  This module builds that view exactly once per
engine run, from the already-parsed ASTs (no source is re-read and no
file is re-parsed — see ``tests/test_analysis_program.py``):

* **Module graph** — every analyzed file becomes a module
  (``repro/serving/routes.py`` → ``repro.serving.routes``), and every
  ``import`` / ``from ... import`` statement becomes an
  :class:`ImportRecord` edge, tagged *lazy* when it sits inside a
  function body (lazy imports are still architectural dependencies;
  LAYERING counts them).

* **Call graph** — every function/method def becomes a
  :class:`FunctionInfo` node.  Calls are resolved *conservatively*:

  - ``name(...)`` resolves through the module's import aliases and
    module-level defs (precise);
  - ``obj.method(...)`` resolves to **every** project function whose
    final name matches ``method`` (over-approximation: we cannot type
    ``obj`` statically, so we assume it could be any of them).

  Over-approximation is the right failure mode for the analyses built
  on top: TAINT-SQL may taint too much (quieted with verified
  ``# taint:`` annotations) but never misses a real edge that the
  resolver can see.  The known blind spots — callbacks passed as
  values (``Thread(target=f)``), queue hand-offs between threads —
  are documented in ``docs/analysis-rules.md`` and covered by
  ``# taint: source`` annotations at the receiving end.

* **Taint annotations** — ``# taint: <kind> [via <name>] (reason)``
  comments are collected here (on the ``def`` line, or on the line
  directly above the ``def``/decorator block) and *verified* by the
  TAINT-SQL rule; an annotation is never trusted on its own.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.core import FileContext

_TAINT_RE = re.compile(
    r"#\s*taint:\s*(?P<kind>source|sink|trusted|sanitizer)"
    r"(?:\s+via\s+(?P<via>\w+))?"
    r"(?:\s*\((?P<reason>[^)]*)\))?"
)


def module_name(logical_path: str) -> str:
    """``repro/serving/routes.py`` → ``repro.serving.routes``."""
    parts = logical_path.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


@dataclass(frozen=True)
class ImportRecord:
    """One import edge: ``module`` depends on ``target``."""

    module: str          # importing module
    target: str          # imported module (full dotted name)
    path: str            # logical path of the importing file
    line: int
    lazy: bool           # inside a function body (still an edge)


@dataclass(frozen=True)
class TaintAnnotation:
    """A parsed ``# taint:`` comment, pending verification."""

    kind: str            # source | sink | trusted | sanitizer
    via: str | None      # sanitizer only: callee name the barrier relies on
    reason: str
    path: str
    line: int


@dataclass
class FunctionInfo:
    """One function/method definition in the project."""

    fid: str             # "repro.db.database:Database.execute"
    name: str            # final segment ("execute")
    qualname: str        # "Database.execute"
    module: str
    path: str            # logical path
    node: ast.AST        # FunctionDef | AsyncFunctionDef
    ctx: FileContext
    annotation: TaintAnnotation | None = None
    calls: list[ast.Call] = field(default_factory=list)

    @property
    def line(self) -> int:
        return self.node.lineno

    def params(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


class ProjectContext:
    """The shared whole-program index handed to every project rule.

    Built lazily by the engine from the per-file contexts of one run;
    every project rule sees the *same* instance, so the graph is built
    once no matter how many rules consume it.
    """

    def __init__(self, contexts: dict[str, FileContext]):
        self.contexts = contexts
        #: module name -> FileContext
        self.modules: dict[str, FileContext] = {}
        #: all import edges, in file order
        self.imports: list[ImportRecord] = []
        #: function id -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: final name -> [function ids] (conservative attribute resolution)
        self._by_name: dict[str, list[str]] = {}
        #: module -> {alias -> dotted target} for module-level imports
        self._aliases: dict[str, dict[str, str]] = {}
        #: call node -> enclosing function id (module-level calls absent)
        self._call_owner: dict[ast.Call, str] = {}
        #: annotations that could not be attached to a def (sink/stale
        #: line annotations live on statements; rules fetch via context)
        self.line_annotations: dict[tuple[str, int], TaintAnnotation] = {}
        for ctx in contexts.values():
            self._index_file(ctx)

    # ------------------------------------------------------------ building

    def _index_file(self, ctx: FileContext) -> None:
        mod = module_name(ctx.logical_path)
        self.modules[mod] = ctx
        aliases: dict[str, str] = {}
        self._aliases[mod] = aliases
        package = mod if ctx.logical_path.endswith("__init__.py") else (
            mod.rpartition(".")[0]
        )

        func_stack: list[FunctionInfo] = []

        def visit(node: ast.AST, qual: list[str]) -> None:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                self._record_import(ctx, mod, package, node, aliases,
                                    lazy=bool(func_stack))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(qual + [node.name])
                info = FunctionInfo(
                    fid=f"{mod}:{qualname}",
                    name=node.name,
                    qualname=qualname,
                    module=mod,
                    path=ctx.logical_path,
                    node=node,
                    ctx=ctx,
                    annotation=self._def_annotation(ctx, node),
                )
                self.functions[info.fid] = info
                self._by_name.setdefault(node.name, []).append(info.fid)
                func_stack.append(info)
                for child in ast.iter_child_nodes(node):
                    visit(child, qual + [node.name])
                func_stack.pop()
                return
            if isinstance(node, ast.Call) and func_stack:
                owner = func_stack[-1]
                owner.calls.append(node)
                self._call_owner[node] = owner.fid
            if isinstance(node, ast.ClassDef):
                for child in ast.iter_child_nodes(node):
                    visit(child, qual + [node.name])
                return
            for child in ast.iter_child_nodes(node):
                visit(child, qual)

        visit(ctx.tree, [])

        for line, comment in ctx.comments.items():
            match = _TAINT_RE.search(comment)
            if match:
                self.line_annotations[(ctx.logical_path, line)] = TaintAnnotation(
                    kind=match.group("kind"),
                    via=match.group("via"),
                    reason=(match.group("reason") or "").strip(),
                    path=ctx.logical_path,
                    line=line,
                )

    def _record_import(
        self,
        ctx: FileContext,
        mod: str,
        package: str,
        node: ast.Import | ast.ImportFrom,
        aliases: dict[str, str],
        *,
        lazy: bool,
    ) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = alias.name
                aliases[alias.asname or target.split(".")[0]] = (
                    target if alias.asname else target.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = target
                self.imports.append(ImportRecord(
                    module=mod, target=target, path=ctx.logical_path,
                    line=node.lineno, lazy=lazy,
                ))
            return
        base = node.module or ""
        if node.level:  # relative import: anchor at the enclosing package
            parts = package.split(".") if package else []
            if node.level > 1:
                parts = parts[: -(node.level - 1)]
            base = ".".join(parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                target = base
            else:
                # ``from repro.serving import metrics`` imports a
                # *module*; ``from repro.metrics import Counter``
                # imports a name.  Prefer the submodule when we know it.
                candidate = f"{base}.{alias.name}"
                target = candidate if self._could_be_module(candidate) else base
                aliases[alias.asname or alias.name] = candidate
            self.imports.append(ImportRecord(
                module=mod, target=target, path=ctx.logical_path,
                line=node.lineno, lazy=lazy,
            ))

    def _could_be_module(self, dotted: str) -> bool:
        if dotted in self.modules:
            return True
        # Not yet indexed (file order) — fall back to the path layout.
        for ctx in self.contexts.values():
            if module_name(ctx.logical_path) == dotted:
                return True
        return False

    @staticmethod
    def _def_annotation(ctx: FileContext, node: ast.AST) -> TaintAnnotation | None:
        first_line = min(
            [node.lineno] + [d.lineno for d in getattr(node, "decorator_list", [])]
        )
        for line in (node.lineno, first_line - 1):
            match = _TAINT_RE.search(ctx.comment_on(line))
            if match:
                return TaintAnnotation(
                    kind=match.group("kind"),
                    via=match.group("via"),
                    reason=(match.group("reason") or "").strip(),
                    path=ctx.logical_path,
                    line=line,
                )
        return None

    # ----------------------------------------------------------- resolution

    def enclosing_function(self, call: ast.Call) -> FunctionInfo | None:
        fid = self._call_owner.get(call)
        return self.functions.get(fid) if fid else None

    def resolve_call(self, call: ast.Call, caller_module: str) -> list[FunctionInfo]:
        """Project functions this call might target (conservative)."""
        func = call.func
        if isinstance(func, ast.Name):
            dotted = self._aliases.get(caller_module, {}).get(func.id)
            if dotted is not None:
                fid = f"{dotted.rpartition('.')[0]}:{dotted.rpartition('.')[2]}"
                info = self.functions.get(fid)
                return [info] if info else []
            fid = f"{caller_module}:{func.id}"
            info = self.functions.get(fid)
            return [info] if info else []
        if isinstance(func, ast.Attribute):
            # Precise when the receiver is an imported module alias.
            if isinstance(func.value, ast.Name):
                dotted = self._aliases.get(caller_module, {}).get(func.value.id)
                if dotted is not None and dotted in self.modules:
                    info = self.functions.get(f"{dotted}:{func.attr}")
                    return [info] if info else []
            # Otherwise: any project function with this final name.
            return [
                self.functions[fid]
                for fid in self._by_name.get(func.attr, [])
            ]
        return []

    def functions_in_module(self, mod: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == mod]

    def functions_in_path(self, logical_path: str) -> list[FunctionInfo]:
        return [f for f in self.functions.values() if f.path == logical_path]
