"""Baseline file: the short list of justified legacy findings.

Each entry pins one violation by a content fingerprint —
``sha1(rule | logical path | stripped source line | occurrence index)``
— so entries survive line-number drift but go stale the moment the
offending line changes or disappears.  ``--check-baseline`` fails on
stale entries (so the baseline can only shrink by honest edits) and on
entries missing a justification (so it never becomes a dumping ground).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import Violation

_VERSION = 1


def fingerprint_violations(violations: list[Violation]) -> list[tuple[Violation, str]]:
    """Pair each violation with its content fingerprint.

    The occurrence index disambiguates identical lines within one file
    (e.g. two ``time.time()`` calls on textually equal lines).
    """
    seen: dict[tuple[str, str, str], int] = {}
    out: list[tuple[Violation, str]] = []
    for v in violations:
        key = (v.rule, v.path, v.source_line)
        index = seen.get(key, 0)
        seen[key] = index + 1
        raw = f"{v.rule}|{v.path}|{v.source_line}|{index}"
        out.append((v, hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]))
    return out


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    line: int
    source: str
    justification: str


class Baseline:
    def __init__(self, entries: list[BaselineEntry] | None = None):
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                fingerprint=e["fingerprint"],
                rule=e["rule"],
                path=e["path"],
                line=int(e.get("line", 0)),
                source=e.get("source", ""),
                justification=e.get("justification", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        data = {
            "version": _VERSION,
            "entries": [
                {
                    "fingerprint": e.fingerprint,
                    "rule": e.rule,
                    "path": e.path,
                    "line": e.line,
                    "source": e.source,
                    "justification": e.justification,
                }
                for e in sorted(self.entries, key=lambda e: (e.path, e.line, e.rule))
            ],
        }
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    def fingerprints(self) -> set[str]:
        return {e.fingerprint for e in self.entries}

    def unjustified(self) -> list[BaselineEntry]:
        return [e for e in self.entries if not e.justification.strip()]


@dataclass
class BaselineDiff:
    """Current violations split against a baseline."""

    new: list[tuple[Violation, str]]      # not in the baseline — must be fixed
    matched: list[tuple[Violation, str]]  # pinned by a baseline entry
    stale: list[BaselineEntry]            # baseline entries no longer firing


def diff_against_baseline(
    violations: list[Violation], baseline: Baseline
) -> BaselineDiff:
    pairs = fingerprint_violations(violations)
    known = baseline.fingerprints()
    new = [(v, fp) for v, fp in pairs if fp not in known]
    matched = [(v, fp) for v, fp in pairs if fp in known]
    current = {fp for _, fp in pairs}
    stale = [e for e in baseline.entries if e.fingerprint not in current]
    return BaselineDiff(new=new, matched=matched, stale=stale)


def build_baseline(
    violations: list[Violation], justifications: dict[str, str] | None = None
) -> Baseline:
    """Snapshot the given violations as a fresh baseline.

    ``justifications`` maps fingerprints to reasons; entries without one
    are saved with an empty justification and will fail
    ``--check-baseline`` until a human fills them in — writing a
    baseline is deliberately not enough to make the build green.
    """
    justifications = justifications or {}
    entries = [
        BaselineEntry(
            fingerprint=fp,
            rule=v.rule,
            path=v.path,
            line=v.line,
            source=v.source_line,
            justification=justifications.get(fp, ""),
        )
        for v, fp in fingerprint_violations(violations)
    ]
    return Baseline(entries)
