"""Combined value extractor.

Paper Section IV-B1 runs *two* NER models (a custom trained model and a
commercial API) plus deterministic heuristics, and unions their output.
This module merges the three sources and resolves duplicates: spans with
identical text are deduplicated, and a span fully contained in another
from the *same* source is dropped (cross-source containment is kept —
"John F Kennedy International Airport" from the gazetteer and "Kennedy"
from the tagger both seed useful candidates).
"""

from __future__ import annotations

from repro.ner.gazetteer import GazetteerRecognizer
from repro.ner.heuristics import extract_heuristic_values
from repro.ner.tagger import PerceptronTagger
from repro.ner.types import ExtractedValue, SpanKind


class ValueExtractor:
    """Runs heuristics + optional tagger + optional gazetteer."""

    def __init__(
        self,
        tagger: PerceptronTagger | None = None,
        gazetteer: GazetteerRecognizer | None = None,
        *,
        use_heuristics: bool = True,
    ):
        self._tagger = tagger
        self._gazetteer = gazetteer
        self._use_heuristics = use_heuristics

    def extract(self, question: str) -> list[ExtractedValue]:
        """All extracted value spans, position-sorted and deduplicated."""
        spans: list[ExtractedValue] = []
        if self._use_heuristics:
            spans.extend(extract_heuristic_values(question))
        if self._tagger is not None:
            spans.extend(self._tagger.extract(question))
        if self._gazetteer is not None:
            spans.extend(self._gazetteer.extract(question))
        return merge_spans(spans)


def merge_spans(spans: list[ExtractedValue]) -> list[ExtractedValue]:
    """Deduplicate extraction results.

    Keeps at most one span per (normalized text, kind); drops spans fully
    contained in a longer span *from the same source* (within one source a
    contained span is redundant; across sources it is evidence).
    """
    spans = sorted(spans, key=lambda s: (s.start, -s.length))
    kept: list[ExtractedValue] = []
    seen: set[tuple[str, SpanKind]] = set()
    for span in spans:
        key = (span.text.lower(), span.kind)
        if key in seen:
            continue
        contained = any(
            other.source == span.source
            and other.start <= span.start
            and span.end <= other.end
            and other.length > span.length
            and other.kind == span.kind
            for other in kept
        )
        if contained:
            continue
        seen.add(key)
        kept.append(span)
    return kept
