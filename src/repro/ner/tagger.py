"""Trainable sequence tagger: the "custom NER model".

The paper trains a custom transformer NER on question/value pairs.  Our
offline stand-in is an averaged-perceptron BIO tagger — the classic
structured-perceptron recipe with greedy decoding — trained on the same
supervision (character spans of gold values inside questions).  It shares
the custom model's key property the paper discusses: it adapts tightly to
the training distribution (and can overfit to it), whereas the gazetteer
(:mod:`repro.ner.gazetteer`) plays the generic "commercial API" role.
"""

from __future__ import annotations

import json
import random
from collections import defaultdict
from collections.abc import Sequence
from pathlib import Path

from repro.ner.types import ExtractedValue, SpanKind
from repro.text.stemmer import stem
from repro.text.tokenizer import Token, tokenize

_TAGS = ("O", "B", "I")


def _word_shape(text: str) -> str:
    shape = []
    for ch in text[:8]:
        if ch.isupper():
            shape.append("X")
        elif ch.islower():
            shape.append("x")
        elif ch.isdigit():
            shape.append("d")
        else:
            shape.append(ch)
    return "".join(shape)


def _features(tokens: Sequence[Token], i: int, previous_tag: str) -> list[str]:
    """Feature strings for position ``i`` (binary features, value 1)."""
    token = tokens[i]
    lower = token.lower
    features = [
        "bias",
        f"w={lower}",
        f"stem={stem(lower)}",
        f"shape={_word_shape(token.text)}",
        f"isnum={token.is_number()}",
        f"iscap={token.is_capitalized()}",
        f"prefix={lower[:3]}",
        f"suffix={lower[-3:]}",
        f"prevtag={previous_tag}",
    ]
    if i > 0:
        features.append(f"w-1={tokens[i - 1].lower}")
        features.append(f"cap-1={tokens[i - 1].is_capitalized()}")
    else:
        features.append("w-1=<s>")
    if i + 1 < len(tokens):
        features.append(f"w+1={tokens[i + 1].lower}")
        features.append(f"cap+1={tokens[i + 1].is_capitalized()}")
    else:
        features.append("w+1=</s>")
    if i > 1:
        features.append(f"w-2={tokens[i - 2].lower}")
    return features


class PerceptronTagger:
    """Averaged perceptron BIO tagger over question tokens."""

    def __init__(self) -> None:
        # weights[feature][tag] -> float
        self._weights: dict[str, dict[str, float]] = defaultdict(dict)
        self._totals: dict[tuple[str, str], float] = defaultdict(float)
        self._timestamps: dict[tuple[str, str], int] = defaultdict(int)
        self._updates = 0
        self._averaged = False

    # ------------------------------------------------------------ scoring

    def _score(self, features: list[str]) -> dict[str, float]:
        scores = {tag: 0.0 for tag in _TAGS}
        for feature in features:
            weights = self._weights.get(feature)
            if not weights:
                continue
            for tag, weight in weights.items():
                scores[tag] += weight
        return scores

    def _predict_tags(self, tokens: Sequence[Token]) -> list[str]:
        tags: list[str] = []
        previous = "O"
        for i in range(len(tokens)):
            scores = self._score(_features(tokens, i, previous))
            if previous == "O":
                scores["I"] = float("-inf")  # I cannot follow O
            tag = max(_TAGS, key=lambda t: (scores[t], t == "O"))
            tags.append(tag)
            previous = tag
        return tags

    # ----------------------------------------------------------- training

    def _update(self, truth: str, guess: str, features: list[str]) -> None:
        self._updates += 1
        for feature in features:
            for tag, delta in ((truth, 1.0), (guess, -1.0)):
                key = (feature, tag)
                current = self._weights[feature].get(tag, 0.0)
                self._totals[key] += (self._updates - self._timestamps[key]) * current
                self._timestamps[key] = self._updates
                self._weights[feature][tag] = current + delta

    def train(
        self,
        examples: list[tuple[str, list[tuple[int, int]]]],
        *,
        epochs: int = 5,
        seed: int = 13,
    ) -> None:
        """Train on ``(question, [(start, end), ...])`` span supervision."""
        rng = random.Random(seed)
        prepared = [
            (tokenize(question), _spans_to_tags(question, spans))
            for question, spans in examples
        ]
        prepared = [(tokens, tags) for tokens, tags in prepared if tokens]
        for _epoch in range(epochs):
            rng.shuffle(prepared)
            for tokens, gold_tags in prepared:
                previous = "O"
                for i, gold in enumerate(gold_tags):
                    features = _features(tokens, i, previous)
                    scores = self._score(features)
                    if previous == "O":
                        scores["I"] = float("-inf")
                    guess = max(_TAGS, key=lambda t: (scores[t], t == "O"))
                    if guess != gold:
                        self._update(gold, guess, features)
                    previous = gold  # teacher forcing on the tag chain
        self._average()

    def _average(self) -> None:
        if self._averaged:
            return
        for feature, weights in self._weights.items():
            for tag in list(weights):
                key = (feature, tag)
                total = self._totals[key]
                total += (self._updates - self._timestamps[key]) * weights[tag]
                averaged = total / max(self._updates, 1)
                if abs(averaged) > 1e-9:
                    weights[tag] = averaged
                else:
                    del weights[tag]
        self._averaged = True

    # ---------------------------------------------------------- interface

    def extract(self, question: str) -> list[ExtractedValue]:
        """Extract value spans from ``question``."""
        tokens = tokenize(question)
        if not tokens:
            return []
        tags = self._predict_tags(tokens)
        spans: list[ExtractedValue] = []
        start_token: Token | None = None
        end_token: Token | None = None
        for token, tag in zip(tokens, tags):
            if tag == "B":
                if start_token is not None and end_token is not None:
                    spans.append(_make_span(question, start_token, end_token))
                start_token = end_token = token
            elif tag == "I" and start_token is not None:
                end_token = token
            else:
                if start_token is not None and end_token is not None:
                    spans.append(_make_span(question, start_token, end_token))
                start_token = end_token = None
        if start_token is not None and end_token is not None:
            spans.append(_make_span(question, start_token, end_token))
        return spans

    # -------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Write the (averaged) weights to JSON."""
        self._average()
        payload = {
            feature: weights for feature, weights in self._weights.items() if weights
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "PerceptronTagger":
        tagger = cls()
        payload = json.loads(Path(path).read_text())
        for feature, weights in payload.items():
            tagger._weights[feature] = dict(weights)
        tagger._averaged = True
        return tagger


def _make_span(question: str, start_token: Token, end_token: Token) -> ExtractedValue:
    text = question[start_token.start:end_token.end]
    kind = SpanKind.NUMBER if text.replace(".", "", 1).isdigit() else SpanKind.TEXT
    return ExtractedValue(
        text=text,
        start=start_token.start,
        end=end_token.end,
        kind=kind,
        source="tagger",
    )


def _spans_to_tags(question: str, spans: list[tuple[int, int]]) -> list[str]:
    """Project character spans onto BIO token tags."""
    tokens = tokenize(question)
    tags = ["O"] * len(tokens)
    for start, end in spans:
        inside = False
        for i, token in enumerate(tokens):
            if token.start >= start and token.end <= end:
                tags[i] = "I" if inside else "B"
                inside = True
            elif token.start >= end:
                break
    return tags
