"""Shared types for value extraction."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpanKind(enum.Enum):
    """Coarse classification of an extracted span (drives candidate
    generation: numbers skip similarity search, quoted strings skip
    validation, ...)."""

    TEXT = "text"          # plain text span (e.g. a name or a category)
    NUMBER = "number"      # numeric literal
    QUOTED = "quoted"      # content extracted from quotes
    LETTER = "letter"      # single letter ("the letter M")
    ORDINAL = "ordinal"    # "fourth", "9th" ...
    MONTH = "month"        # month name
    YEAR = "year"          # 4-digit year


@dataclass(frozen=True)
class ExtractedValue:
    """A value span extracted from the question.

    Attributes:
        text: the surface text of the span.
        start: first character offset in the question.
        end: one-past-last character offset.
        kind: coarse span classification.
        source: which extractor produced it (``heuristic``, ``tagger``,
            ``gazetteer``); kept for error analysis.
    """

    text: str
    start: int
    end: int
    kind: SpanKind
    source: str

    def overlaps(self, other: "ExtractedValue") -> bool:
        return self.start < other.end and other.start < self.end

    @property
    def length(self) -> int:
        return self.end - self.start
