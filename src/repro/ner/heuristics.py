"""Deterministic value-extraction heuristics.

Paper Section IV-B1 lists three heuristics that complement the stochastic
NER models: (1) content in quotes, (2) capitalized terms, (3) single
letters.  We additionally extract numbers, ordinals and month names, which
the paper handles inside its candidate-generation heuristics — pulling the
spans out is a pre-requisite for that step.
"""

from __future__ import annotations

import re

from repro.ner.types import ExtractedValue, SpanKind
from repro.text.tokenizer import Token, tokenize

# Single quotes must not touch a letter on the outside, so apostrophes
# inside words ("head's") are not mistaken for opening quotes.
_QUOTED_RE = re.compile(
    r"""(?<![A-Za-z])['‘](?P<single>[^'‘’]+)['’](?![A-Za-z])"""
    r"""|["“](?P<double>[^"“”]+)["”]"""
)
_SINGLE_LETTER_RE = re.compile(
    r"\bletter\s+['\"]?(?P<letter>[A-Za-z])['\"]?", re.IGNORECASE
)

MONTHS = {
    "january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
    "june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
    "november": 11, "december": 12,
}

ORDINAL_WORDS = {
    "first": 1, "second": 2, "third": 3, "fourth": 4, "fifth": 5,
    "sixth": 6, "seventh": 7, "eighth": 8, "ninth": 9, "tenth": 10,
}

_ORDINAL_SUFFIX_RE = re.compile(r"^(?P<number>\d+)(st|nd|rd|th)$", re.IGNORECASE)

# Scans raw text: the word tokenizer splits "9th" into "9" + "th", so
# suffixed ordinals are found with a regex over the question instead.
_ORDINAL_SCAN_RE = re.compile(r"\b(?P<number>\d+)(st|nd|rd|th)\b", re.IGNORECASE)

# Words that are capitalized for grammatical reasons and never values.
_STOPWORDS = {
    "what", "which", "who", "whose", "whom", "where", "when", "how", "show",
    "give", "list", "find", "report", "return", "tell", "display", "count",
    "the", "a", "an", "of", "for", "in", "on", "with", "and", "or", "is",
    "are", "do", "does", "did", "please", "me", "all", "each", "every",
}


def extract_quoted(question: str) -> list[ExtractedValue]:
    """Heuristic 1: content in quotes is (almost) always a value."""
    values = []
    for match in _QUOTED_RE.finditer(question):
        group = "single" if match.group("single") is not None else "double"
        content = match.group(group).strip()
        if content:
            values.append(
                ExtractedValue(
                    text=content,
                    start=match.start(group),
                    end=match.end(group),
                    kind=SpanKind.QUOTED,
                    source="heuristic",
                )
            )
    return values


def extract_capitalized(question: str) -> list[ExtractedValue]:
    """Heuristic 2: maximal runs of capitalized tokens.

    The sentence-initial token only joins a run when the following token is
    capitalized too, so 'Show all flights ...' does not produce 'Show'.
    """
    tokens = tokenize(question)
    values: list[ExtractedValue] = []
    run: list[Token] = []

    def flush() -> None:
        nonlocal run
        if not run:
            return
        usable = [t for t in run if t.lower not in _STOPWORDS]
        if usable:
            first, last = usable[0], usable[-1]
            values.append(
                ExtractedValue(
                    text=question[first.start:last.end],
                    start=first.start,
                    end=last.end,
                    kind=SpanKind.TEXT,
                    source="heuristic",
                )
            )
        run = []

    for i, token in enumerate(tokens):
        capitalized_word = token.is_word() and token.is_capitalized()
        joins_number = token.is_number() and run  # "Airbus A340" style codes
        if capitalized_word or joins_number:
            if token.start == 0 or (not run and i == 0):
                # Sentence-initial: only start a run when the next token is
                # also capitalized (a multi-word proper noun at position 0).
                next_token = tokens[i + 1] if i + 1 < len(tokens) else None
                if next_token is not None and next_token.is_word() and next_token.is_capitalized():
                    run.append(token)
                continue
            run.append(token)
        else:
            flush()
    flush()
    return values


def extract_single_letters(question: str) -> list[ExtractedValue]:
    """Heuristic 3: single letters mentioned as such ('the letter M')."""
    values = []
    for match in _SINGLE_LETTER_RE.finditer(question):
        values.append(
            ExtractedValue(
                text=match.group("letter"),
                start=match.start("letter"),
                end=match.end("letter"),
                kind=SpanKind.LETTER,
                source="heuristic",
            )
        )
    return values


def extract_numbers(question: str) -> list[ExtractedValue]:
    """Numbers and 4-digit years (years get their own kind so date
    heuristics can treat them specially)."""
    values = []
    for token in tokenize(question):
        if not token.is_number():
            continue
        kind = SpanKind.NUMBER
        if "." not in token.text and len(token.text) == 4 and token.text[0] in "12":
            kind = SpanKind.YEAR
        values.append(
            ExtractedValue(
                text=token.text,
                start=token.start,
                end=token.end,
                kind=kind,
                source="heuristic",
            )
        )
    return values


def extract_ordinals(question: str) -> list[ExtractedValue]:
    """Ordinal words and suffixed ordinals ('fourth', '9th')."""
    values = []
    for token in tokenize(question):
        if token.lower in ORDINAL_WORDS:
            values.append(
                ExtractedValue(
                    text=token.text,
                    start=token.start,
                    end=token.end,
                    kind=SpanKind.ORDINAL,
                    source="heuristic",
                )
            )
    for match in _ORDINAL_SCAN_RE.finditer(question):
        values.append(
            ExtractedValue(
                text=match.group(0),
                start=match.start(),
                end=match.end(),
                kind=SpanKind.ORDINAL,
                source="heuristic",
            )
        )
    return values


def extract_months(question: str) -> list[ExtractedValue]:
    """Month names ('August' -> month 8, Section IV-B2 heuristic 4)."""
    values = []
    for token in tokenize(question):
        if token.lower in MONTHS:
            values.append(
                ExtractedValue(
                    text=token.text,
                    start=token.start,
                    end=token.end,
                    kind=SpanKind.MONTH,
                    source="heuristic",
                )
            )
    return values


def extract_heuristic_values(question: str) -> list[ExtractedValue]:
    """Run all heuristics and return spans sorted by position.

    Overlap resolution happens later in the combined extractor (quoted
    spans may legitimately cover capitalized spans, and both are useful
    candidate seeds).
    """
    values: list[ExtractedValue] = []
    values.extend(extract_quoted(question))
    values.extend(extract_capitalized(question))
    values.extend(extract_single_letters(question))
    values.extend(extract_numbers(question))
    values.extend(extract_ordinals(question))
    values.extend(extract_months(question))
    values.sort(key=lambda v: (v.start, -v.length))
    return values


def ordinal_to_int(text: str) -> int | None:
    """Parse an ordinal surface form into its integer ('fourth' -> 4)."""
    lowered = text.lower()
    if lowered in ORDINAL_WORDS:
        return ORDINAL_WORDS[lowered]
    match = _ORDINAL_SUFFIX_RE.match(text)
    if match:
        return int(match.group("number"))
    return None
