"""Value extraction: heuristics, trainable tagger, gazetteer, combiner."""

from repro.ner.extractor import ValueExtractor, merge_spans
from repro.ner.gazetteer import GazetteerRecognizer
from repro.ner.heuristics import (
    MONTHS,
    ORDINAL_WORDS,
    extract_capitalized,
    extract_heuristic_values,
    extract_months,
    extract_numbers,
    extract_ordinals,
    extract_quoted,
    extract_single_letters,
    ordinal_to_int,
)
from repro.ner.tagger import PerceptronTagger
from repro.ner.types import ExtractedValue, SpanKind

__all__ = [
    "ExtractedValue",
    "GazetteerRecognizer",
    "MONTHS",
    "ORDINAL_WORDS",
    "PerceptronTagger",
    "SpanKind",
    "ValueExtractor",
    "extract_capitalized",
    "extract_heuristic_values",
    "extract_months",
    "extract_numbers",
    "extract_ordinals",
    "extract_quoted",
    "extract_single_letters",
    "merge_spans",
    "ordinal_to_int",
]
