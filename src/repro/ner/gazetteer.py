"""Gazetteer-based entity recognizer: the "commercial NER API" stand-in.

The paper's second extractor is a commercial NER API (Google Cloud Natural
Language).  Offline, we simulate an external general-purpose service with a
gazetteer of *world knowledge* that is independent of any particular
database: countries, large cities, common given names, airlines, weekdays
and months.  Like the real API it (a) is not tuned to the task, so it
recognizes generic entities the database may not contain, and (b) never
sees the training data, so it cannot overfit.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.ner.types import ExtractedValue, SpanKind
from repro.text.tokenizer import tokenize

COUNTRIES = [
    "france", "germany", "italy", "spain", "portugal", "switzerland",
    "austria", "netherlands", "belgium", "poland", "sweden", "norway",
    "denmark", "finland", "ireland", "greece", "turkey", "russia", "china",
    "japan", "korea", "india", "brazil", "argentina", "mexico", "canada",
    "australia", "egypt", "morocco", "kenya", "nigeria",
    "united states", "united kingdom", "usa", "uk", "new zealand",
    "south africa", "czech republic", "saudi arabia", "vietnam", "thailand",
]

CITIES = [
    "paris", "london", "berlin", "madrid", "rome", "lisbon", "zurich",
    "vienna", "amsterdam", "brussels", "warsaw", "stockholm", "oslo",
    "copenhagen", "helsinki", "dublin", "athens", "istanbul", "moscow",
    "beijing", "tokyo", "seoul", "mumbai", "delhi", "sao paulo",
    "buenos aires", "mexico city", "toronto", "sydney", "cairo", "nairobi",
    "new york", "los angeles", "chicago", "houston", "boston", "seattle",
    "san francisco", "miami", "denver", "atlanta", "dallas", "phoenix",
    "geneva", "munich", "hamburg", "barcelona", "milan", "lyon",
]

GIVEN_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen",
    "christopher", "nancy", "daniel", "lisa", "matthew", "betty", "anthony",
    "margaret", "mark", "sandra", "donald", "ashley", "steven", "kimberly",
    "paul", "emily", "andrew", "donna", "joshua", "michelle", "kenneth",
    "dorothy", "kevin", "carol", "brian", "amanda", "george", "melissa",
    "anna", "laura", "alice", "emma", "olivia", "sophia", "lucas", "noah",
    "marco", "pierre", "hans", "ingrid", "yuki", "chen", "elena", "ivan",
]

FAMILY_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "kennedy", "muller", "schmidt", "rossi", "dubois",
]

AIRLINES = [
    "jetblue airways", "delta", "united", "lufthansa", "swiss", "klm",
    "air france", "british airways", "emirates", "qatar airways",
    "singapore airlines", "ryanair", "easyjet", "american airlines",
]

MONTHS = [
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
]

WEEKDAYS = [
    "monday", "tuesday", "wednesday", "thursday", "friday", "saturday",
    "sunday",
]


class GazetteerRecognizer:
    """Dictionary-driven recognizer with longest-match-first span finding."""

    def __init__(self, extra_entries: Iterable[str] = ()):
        entries = (
            COUNTRIES + CITIES + GIVEN_NAMES + FAMILY_NAMES + AIRLINES
            + MONTHS + WEEKDAYS + list(extra_entries)
        )
        # phrase (as word tuple) -> kind
        self._phrases: dict[tuple[str, ...], SpanKind] = {}
        for entry in entries:
            words = tuple(entry.lower().split())
            kind = SpanKind.MONTH if entry.lower() in MONTHS else SpanKind.TEXT
            self._phrases[words] = kind
        self._max_len = max((len(p) for p in self._phrases), default=1)

    def extract(self, question: str) -> list[ExtractedValue]:
        """Longest-match-first scan for gazetteer phrases."""
        tokens = tokenize(question)
        words = [t.lower for t in tokens]
        spans: list[ExtractedValue] = []
        i = 0
        while i < len(tokens):
            matched = False
            for length in range(min(self._max_len, len(tokens) - i), 0, -1):
                phrase = tuple(words[i:i + length])
                kind = self._phrases.get(phrase)
                if kind is not None:
                    first, last = tokens[i], tokens[i + length - 1]
                    spans.append(
                        ExtractedValue(
                            text=question[first.start:last.end],
                            start=first.start,
                            end=last.end,
                            kind=kind,
                            source="gazetteer",
                        )
                    )
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1
        return spans
