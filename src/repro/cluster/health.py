"""Supervision primitives: worker states and the restart circuit breaker.

Kept free of process/socket concerns so the policies are unit-testable
with a fake clock; the supervisor composes them.  The restart delay
schedule (:class:`ExponentialBackoff`) moved to :mod:`repro.concurrency`
so non-cluster packages (the KB refresher) can use it without importing
the cluster layer; it is re-exported here for compatibility.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from collections.abc import Callable

from repro.concurrency import ExponentialBackoff  # noqa: F401  (re-export)


class WorkerStatus(enum.Enum):
    """Lifecycle of one worker slot as the supervisor sees it."""

    STARTING = "starting"      # process forked, warm-up in progress
    READY = "ready"            # sent `ready`, heartbeats healthy
    UNHEALTHY = "unhealthy"    # missed heartbeats; about to be killed
    RESTARTING = "restarting"  # dead; restart scheduled (backoff)
    BROKEN = "broken"          # circuit breaker tripped; no more restarts
    STOPPED = "stopped"        # deliberately shut down


class CircuitBreaker:
    """Trips after ``max_failures`` failures inside a sliding window.

    A worker that crashes occasionally is restarted (with backoff); one
    that crash-loops — e.g. a corrupt index bundle that kills it during
    warm-up every time — would otherwise burn CPU forever.  After the
    breaker trips the slot is marked :data:`WorkerStatus.BROKEN` and the
    router stops sending it traffic until an operator intervenes.
    """

    def __init__(
        self,
        *,
        max_failures: int = 5,
        window_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_failures < 1 or window_s <= 0:
            raise ValueError("need max_failures >= 1 and window_s > 0")
        self.max_failures = max_failures
        self.window_s = window_s
        self._clock = clock
        self._failures: deque[float] = deque()
        self._tripped = False

    def _prune(self, now: float) -> None:
        while self._failures and now - self._failures[0] > self.window_s:
            self._failures.popleft()

    def record_failure(self) -> bool:
        """Record one failure; returns True when the breaker is (now) open."""
        now = self._clock()
        self._failures.append(now)
        self._prune(now)
        if len(self._failures) >= self.max_failures:
            self._tripped = True
        return self._tripped

    def record_success(self) -> None:
        """A full healthy interval closes the breaker and clears history."""
        self._failures.clear()
        self._tripped = False

    @property
    def open(self) -> bool:
        return self._tripped

    @property
    def recent_failures(self) -> int:
        self._prune(self._clock())
        return len(self._failures)
