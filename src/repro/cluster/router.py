"""Consistent-hash routing of databases onto cluster workers.

Requests are routed by ``db_id`` so each worker keeps serving the same
shard of databases: its schema-feature cache, value indexes, and result
cache stay hot, and no two workers pay the memory for the same index.

The ring is the classic construction: every worker owns ``replicas``
virtual points on a 64-bit circle; a database maps to the first worker
point at or after its own hash.  Consistency is the property that makes
it right for supervision: when a worker dies, only the databases that
hashed to *its* points move (to the next point on the ring) — the other
workers' shards, and therefore their warm caches, are untouched.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections.abc import Iterable, Sequence


def _hash64(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over integer worker ids."""

    def __init__(self, worker_ids: Sequence[int], *, replicas: int = 64):
        if not worker_ids:
            raise ValueError("need at least one worker id")
        if len(set(worker_ids)) != len(worker_ids):
            raise ValueError("worker ids must be unique")
        self.worker_ids = tuple(worker_ids)
        self.replicas = replicas
        points: list[tuple[int, int]] = []
        for worker_id in worker_ids:
            for replica in range(replicas):
                points.append((_hash64(f"w{worker_id}#{replica}"), worker_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def route(self, db_id: str) -> int:
        """The worker owning ``db_id`` with every worker alive."""
        return self.preference(db_id)[0]

    def preference(self, db_id: str, alive: Iterable[int] | None = None) -> list[int]:
        """Distinct workers in ring order starting at ``db_id``'s point.

        The first entry is the primary owner; the rest is the failover
        order.  With ``alive`` given, workers not in it are skipped —
        an empty result means no live worker exists.
        """
        allowed = set(self.worker_ids if alive is None else alive)
        start = bisect_right(self._points, _hash64(db_id)) % len(self._owners)
        order: list[int] = []
        seen: set[int] = set()
        for offset in range(len(self._owners)):
            worker = self._owners[(start + offset) % len(self._owners)]
            if worker in seen or worker not in allowed:
                continue
            seen.add(worker)
            order.append(worker)
            if len(seen) == len(self.worker_ids):
                break
        return order

    def shard(self, worker_id: int, db_ids: Iterable[str]) -> list[str]:
        """The databases whose primary owner is ``worker_id``."""
        return [db_id for db_id in db_ids if self.route(db_id) == worker_id]

    def shards(self, db_ids: Iterable[str]) -> dict[int, list[str]]:
        """Primary-owner partition of ``db_ids`` across all workers."""
        partition: dict[int, list[str]] = {w: [] for w in self.worker_ids}
        for db_id in db_ids:
            partition[self.route(db_id)].append(db_id)
        return partition
