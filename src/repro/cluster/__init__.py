"""Multi-process sharded serving with worker supervision.

The single-process serving stack (:mod:`repro.serving`) is bounded by
the GIL: its thread pool overlaps I/O and the GIL-releasing kernels, but
pure-Python stages serialize.  This package scales past one core by
forking worker *processes*, each running a full ``TranslationService``
over a consistent-hash shard of the databases, under a supervisor that
routes, health-checks, restarts, and aggregates metrics.

Entry point: :class:`ClusterService` — duck-type compatible with
:class:`~repro.serving.service.TranslationService`, so the stdlib HTTP
front-end serves either without changes (``repro serve --workers N``).
"""

from repro.cluster.health import CircuitBreaker, ExponentialBackoff, WorkerStatus
from repro.cluster.protocol import (
    MAX_FRAME_BYTES,
    PeerClosedError,
    ProtocolError,
    budget_to_deadline,
    recv_frame,
    remaining_budget_s,
    send_frame,
)
from repro.cluster.router import HashRing
from repro.cluster.supervisor import ClusterConfig, ClusterService
from repro.cluster.worker import WorkerSpec

__all__ = [
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterService",
    "ExponentialBackoff",
    "HashRing",
    "MAX_FRAME_BYTES",
    "PeerClosedError",
    "ProtocolError",
    "WorkerSpec",
    "WorkerStatus",
    "budget_to_deadline",
    "recv_frame",
    "remaining_budget_s",
    "send_frame",
]
