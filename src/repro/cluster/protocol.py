"""Zero-copy framed IPC between the cluster supervisor and workers.

Every frame on the wire is ``4-byte big-endian length || payload``.  Two
payload encodings share that envelope, distinguished by the first
payload byte:

* **JSON** (first byte ``{`` — i.e. any ``json.dumps`` of an object):
  the original wire format, still produced by :func:`send_frame` and by
  :class:`FrameConnection` when the binary fast path is off.
* **Binary fast path** (first byte ``0x00``, opt-in per sender):
  ``0x00 || 4-byte header length || JSON header || (4-byte blob length
  || blob bytes)*``.  Large string fields and all ``bytes`` fields are
  lifted out of the message before JSON encoding and shipped as raw
  length-prefixed blobs, so multi-kilobyte payloads (candidate lists,
  encoder features, result rows) are not round-tripped through
  ``json.dumps`` character escaping.  The header is the message with
  each lifted field replaced by a placeholder; the receiver re-inflates
  it.  Receivers always understand both encodings, so the fast path
  needs no handshake — enabling it is purely a sender-side choice.

The object always carries a ``"type"`` field; request/response frames
additionally carry an ``"id"`` so many requests can be in flight on one
connection and answers may arrive out of order.

:class:`FrameConnection` is the performant way to speak the protocol:
it keeps one preallocated, geometrically-grown receive buffer per
connection (``recv_into`` on ``memoryview`` slices — no per-chunk
``bytes`` churn or reassembly joins) and writes each frame with a
single gathered ``sendmsg`` syscall referencing blob ``memoryview``\\ s
(no concatenation copy).  A reader interrupted mid-frame — EINTR, a
socket timeout, a one-byte-at-a-time peer — resumes cleanly on the next
call: partial frame state lives on the connection, not the stack.

Deadlines cross the process boundary as a *remaining budget* in seconds
(``budget_s``), not as an absolute timestamp: each side re-anchors the
budget against its own monotonic clock on receipt, so the protocol is
immune to wall-clock skew between supervisor and worker (they share a
host today, but the framing should not bake that in).

Frame types (supervisor -> worker):

* ``request``  — one translate call; fields mirror ``/translate``.
* ``ping``     — heartbeat probe; the worker answers with ``pong``
  carrying its health and metrics snapshots.
* ``shutdown`` — drain and exit (graceful; SIGKILL is the rude path).

Frame types (worker -> supervisor):

* ``ready``    — sent once after the worker warmed its shard.
* ``response`` — answer to a ``request`` (``payload`` is the serialized
  :class:`~repro.serving.service.ServeResponse`).
* ``reject``   — the worker could not accept the request (queue full,
  unknown database, stopping); always retriable at the cluster level.
* ``pong``     — heartbeat answer with ``health`` and ``metrics``.
"""

from __future__ import annotations

import json
import socket
import struct
import time

from repro.errors import ReproError

_LENGTH = struct.Struct("!I")

# Frames are small control/response objects; anything near this bound is
# a protocol bug (e.g. unbounded result rows), not a legitimate message.
MAX_FRAME_BYTES = 8 * 1024 * 1024

# First payload byte of a binary fast-path frame.  JSON payloads always
# start with "{" (0x7B), so the tag can never collide.
BINARY_TAG = 0x00

# Strings at least this long are shipped as raw UTF-8 blobs instead of
# being escaped through json.dumps.  Short strings stay inline: the
# placeholder + length prefix would cost more than the escaping.
BLOB_THRESHOLD = 1024

# Placeholder key marking a lifted field inside the binary header.  The
# NUL prefix keeps it out of the space of real field names; encoders
# refuse messages that happen to contain it rather than mis-decode.
_BLOB_KEY = "\x00blob"


class ProtocolError(ReproError):
    """Malformed or oversized frame, or a closed peer mid-frame."""


class PeerClosedError(ProtocolError):
    """The other end closed the connection at a frame boundary."""


# ----------------------------------------------------------- blob lifting


def _lift_blobs(value, blobs: list[bytes]):
    """Replace large strings / all bytes in ``value`` with placeholders.

    Returns the (possibly rebuilt) JSON-safe structure; lifted payloads
    are appended to ``blobs`` in placeholder-index order.
    """
    if isinstance(value, str):
        if len(value) >= BLOB_THRESHOLD:
            blobs.append(value.encode("utf-8"))
            return {_BLOB_KEY: [len(blobs) - 1, "s"]}
        return value
    if isinstance(value, (bytes, bytearray, memoryview)):
        blobs.append(bytes(value))
        return {_BLOB_KEY: [len(blobs) - 1, "b"]}
    if isinstance(value, dict):
        if _BLOB_KEY in value:
            raise ProtocolError("message contains the reserved blob key")
        return {key: _lift_blobs(item, blobs) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_lift_blobs(item, blobs) for item in value]
    return value


def _restore_blobs(value, blobs: list[memoryview]):
    """Inverse of :func:`_lift_blobs` over a decoded binary header."""
    if isinstance(value, dict):
        placeholder = value.get(_BLOB_KEY)
        if placeholder is not None and len(value) == 1:
            index, kind = placeholder
            blob = blobs[index]
            return str(blob, "utf-8") if kind == "s" else bytes(blob)
        return {key: _restore_blobs(item, blobs) for key, item in value.items()}
    if isinstance(value, list):
        return [_restore_blobs(item, blobs) for item in value]
    return value


def _encode_payload_views(message: dict, *, binary: bool) -> list:
    """Encode ``message`` as a list of buffer views (without the length
    envelope); the caller prefixes the total length and gathers them
    into one write."""
    if not binary:
        return [json.dumps(message, separators=(",", ":")).encode("utf-8")]
    blobs: list[bytes] = []
    header = json.dumps(
        _lift_blobs(message, blobs), separators=(",", ":")
    ).encode("utf-8")
    if not blobs:
        # Nothing lifted: plain JSON is smaller and faster to decode.
        return [header]
    views: list = [bytes((BINARY_TAG,)) + _LENGTH.pack(len(header)), header]
    for blob in blobs:
        views.append(_LENGTH.pack(len(blob)))
        views.append(memoryview(blob))
    return views


def _decode_payload(view) -> dict:
    """Decode one frame payload (memoryview or bytes), either encoding."""
    if len(view) == 0:
        raise ProtocolError("empty frame payload")
    view = memoryview(view)
    try:
        if view[0] == BINARY_TAG:
            if len(view) < 1 + _LENGTH.size:
                raise ProtocolError("truncated binary frame header")
            (header_len,) = _LENGTH.unpack_from(view, 1)
            offset = 1 + _LENGTH.size
            if offset + header_len > len(view):
                raise ProtocolError("binary frame header exceeds payload")
            header = json.loads(str(view[offset:offset + header_len], "utf-8"))
            offset += header_len
            blobs: list[memoryview] = []
            while offset < len(view):
                if offset + _LENGTH.size > len(view):
                    raise ProtocolError("truncated blob length prefix")
                (blob_len,) = _LENGTH.unpack_from(view, offset)
                offset += _LENGTH.size
                if offset + blob_len > len(view):
                    raise ProtocolError("blob exceeds frame payload")
                blobs.append(view[offset:offset + blob_len])
                offset += blob_len
            message = _restore_blobs(header, blobs)
        else:
            # str() decodes straight from the buffer — no bytes() copy.
            message = json.loads(str(view, "utf-8"))
    except ProtocolError:
        raise
    except (UnicodeDecodeError, json.JSONDecodeError, ValueError,
            IndexError, TypeError) as exc:
        raise ProtocolError(f"invalid frame payload: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a string 'type'")
    return message


# --------------------------------------------------------- gathered writes


def _sendmsg_all(sock: socket.socket, views: list) -> None:
    """Write every view with as few syscalls as possible (EINTR-safe)."""
    pending = [memoryview(v) for v in views if len(v)]
    use_sendmsg = hasattr(sock, "sendmsg")
    while pending:
        try:
            if use_sendmsg:
                sent = sock.sendmsg(pending)
            else:  # pragma: no cover - platforms without sendmsg
                sent = sock.send(pending[0])
        except InterruptedError:  # pragma: no cover - EINTR resume
            continue
        while sent > 0:
            head = pending[0]
            if sent >= len(head):
                sent -= len(head)
                pending.pop(0)
            else:
                pending[0] = head[sent:]
                sent = 0


# ------------------------------------------------------ framed connection


class FrameConnection:
    """One framed peer connection with reusable zero-copy buffers.

    ``send`` and ``recv`` are independently single-threaded: one thread
    may read while another writes (they touch disjoint state), but
    concurrent senders must serialize externally (the cluster already
    holds a send lock per connection), as must concurrent readers.

    The receive buffer is preallocated and grown geometrically, never
    shrunk: a connection that once saw a large frame reads every later
    frame with zero allocations.  Partial-frame state survives
    ``recv()`` raising (EINTR surfacing, socket timeouts): the next call
    resumes exactly where the interrupted one stopped.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        binary: bool = False,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        initial_buffer: int = 64 * 1024,
    ):
        self.sock = sock
        self.binary = binary
        self.max_frame_bytes = max_frame_bytes
        self._recv_buf = bytearray(initial_buffer)
        self._recv_have = 0          # bytes of the current frame received
        self._body_len: int | None = None  # parsed length header, if any

    # ------------------------------------------------------------- sending

    def send(self, message: dict) -> None:
        """Serialize ``message`` and write one frame (single syscall in
        the common case, via ``sendmsg`` gather)."""
        payload = _encode_payload_views(message, binary=self.binary)
        total = sum(len(v) for v in payload)
        if total > self.max_frame_bytes:
            raise ProtocolError(
                f"refusing to send {total} byte frame (max {self.max_frame_bytes})"
            )
        _sendmsg_all(self.sock, [_LENGTH.pack(total), *payload])

    # ----------------------------------------------------------- receiving

    def _fill(self, need: int) -> None:
        """Top up the receive buffer to ``need`` bytes of the current
        frame; resumable after EINTR/timeouts mid-frame."""
        if len(self._recv_buf) < need:
            grown = len(self._recv_buf)
            while grown < need:
                grown *= 2
            buf = bytearray(grown)
            buf[: self._recv_have] = self._recv_buf[: self._recv_have]
            self._recv_buf = buf
        view = memoryview(self._recv_buf)
        while self._recv_have < need:
            try:
                count = self.sock.recv_into(view[self._recv_have:need])
            except InterruptedError:  # pragma: no cover - EINTR resume
                continue
            if count == 0:
                if self._recv_have == 0 and self._body_len is None:
                    raise PeerClosedError("peer closed the connection")
                raise ProtocolError(
                    f"peer closed mid-frame ({self._recv_have}/{need} bytes)"
                )
            self._recv_have += count

    def recv(self) -> dict:
        """Read one frame; raises :class:`PeerClosedError` on clean EOF."""
        if self._body_len is None:
            self._fill(_LENGTH.size)
            (length,) = _LENGTH.unpack_from(self._recv_buf, 0)
            if length > self.max_frame_bytes:
                raise ProtocolError(
                    f"{length} byte frame exceeds {self.max_frame_bytes}"
                )
            if length == 0:
                raise ProtocolError("empty frame payload")
            self._body_len = length
        total = _LENGTH.size + self._body_len
        self._fill(total)
        try:
            return _decode_payload(
                memoryview(self._recv_buf)[_LENGTH.size:total]
            )
        finally:
            self._body_len = None
            self._recv_have = 0

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


# ----------------------------------------------- one-shot module functions


def send_frame(sock: socket.socket, message: dict, *, binary: bool = False) -> None:
    """Serialize ``message`` and write one length-prefixed frame.

    Stateless convenience for tests and one-off control messages; the
    cluster's hot paths go through :class:`FrameConnection` instead.
    """
    payload = _encode_payload_views(message, binary=binary)
    total = sum(len(v) for v in payload)
    if total > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send {total} byte frame (max {MAX_FRAME_BYTES})"
        )
    _sendmsg_all(sock, [_LENGTH.pack(total), *payload])


def _recv_exact(sock: socket.socket, count: int, *, at_boundary: bool) -> bytearray:
    """Read exactly ``count`` bytes into a fresh buffer or raise on EOF."""
    buf = bytearray(count)
    view = memoryview(buf)
    have = 0
    while have < count:
        try:
            got = sock.recv_into(view[have:])
        except InterruptedError:  # pragma: no cover - EINTR resume
            continue
        if got == 0:
            if have == 0 and at_boundary:
                raise PeerClosedError("peer closed the connection")
            raise ProtocolError(
                f"peer closed mid-frame ({have}/{count} bytes)"
            )
        have += got
    return buf


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame (either encoding); :class:`PeerClosedError` on
    clean EOF.  Stateless — a timeout mid-frame loses the partial frame;
    long-lived readers should hold a :class:`FrameConnection`."""
    header = _recv_exact(sock, _LENGTH.size, at_boundary=True)
    (length,) = _LENGTH.unpack(bytes(header))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"{length} byte frame exceeds {MAX_FRAME_BYTES}")
    if length == 0:
        raise ProtocolError("empty frame payload")
    body = _recv_exact(sock, length, at_boundary=False)
    return _decode_payload(memoryview(body))


# --------------------------------------------------------- deadline budget


def remaining_budget_s(deadline: float, *, now: float | None = None) -> float:
    """Seconds left until a monotonic ``deadline`` (clamped at 0)."""
    now = time.monotonic() if now is None else now
    return max(0.0, deadline - now)


def budget_to_deadline(budget_s: float, *, now: float | None = None) -> float:
    """Re-anchor a received budget against the local monotonic clock."""
    now = time.monotonic() if now is None else now
    return now + max(0.0, float(budget_s))


# ------------------------------------------------------ frame constructors


def request_frame(
    request_id: int,
    question: str,
    database_id: str,
    *,
    beam_size: int | None,
    execute: bool,
    budget_s: float,
    inject_failure: bool = False,
    tenant_id: str | None = None,
    tenant_weight: int = 1,
    dialect: str | None = None,
) -> dict:
    # Tenant identity crosses the IPC boundary so worker-side fair
    # queueing and per-tenant metrics work without each worker holding
    # the registry; enforcement (auth/rate/quota) stays at the front
    # door, so the worker trusts these fields.  The dialect rides along
    # so each worker renders (and caches) in the requested flavor.
    return {
        "type": "request",
        "id": request_id,
        "question": question,
        "database_id": database_id,
        "beam_size": beam_size,
        "execute": execute,
        "budget_s": budget_s,
        "inject_failure": inject_failure,
        "tenant_id": tenant_id,
        "tenant_weight": tenant_weight,
        "dialect": dialect,
    }


def response_frame(request_id: int, payload: dict) -> dict:
    return {"type": "response", "id": request_id, "payload": payload}


def reject_frame(request_id: int, reason: str) -> dict:
    return {"type": "reject", "id": request_id, "reason": reason}


def ping_frame(ping_id: int) -> dict:
    return {"type": "ping", "id": ping_id}


def pong_frame(ping_id: int, health: dict, metrics: dict) -> dict:
    return {"type": "pong", "id": ping_id, "health": health, "metrics": metrics}


def ready_frame(worker_id: int, warm_s: float, databases: list[str]) -> dict:
    return {
        "type": "ready",
        "worker_id": worker_id,
        "warm_s": warm_s,
        "databases": databases,
    }


def refresh_frame(database_id: str | None = None) -> dict:
    """Ask a worker to force a KB refresh (all databases when id is None).

    Fire-and-forget by design: the worker's refresher does the rebuild on
    its own daemon thread and the result shows up in the health/metrics
    it already reports with every pong.
    """
    return {"type": "refresh", "database_id": database_id}


def shutdown_frame() -> dict:
    return {"type": "shutdown"}
