"""Length-prefixed JSON IPC between the cluster supervisor and workers.

Every frame on the wire is ``4-byte big-endian length || UTF-8 JSON
object``.  The object always carries a ``"type"`` field; request/response
frames additionally carry an ``"id"`` so many requests can be in flight
on one connection and answers may arrive out of order.

Deadlines cross the process boundary as a *remaining budget* in seconds
(``budget_s``), not as an absolute timestamp: each side re-anchors the
budget against its own monotonic clock on receipt, so the protocol is
immune to wall-clock skew between supervisor and worker (they share a
host today, but the framing should not bake that in).

Frame types (supervisor -> worker):

* ``request``  — one translate call; fields mirror ``/translate``.
* ``ping``     — heartbeat probe; the worker answers with ``pong``
  carrying its health and metrics snapshots.
* ``shutdown`` — drain and exit (graceful; SIGKILL is the rude path).

Frame types (worker -> supervisor):

* ``ready``    — sent once after the worker warmed its shard.
* ``response`` — answer to a ``request`` (``payload`` is the serialized
  :class:`~repro.serving.service.ServeResponse`).
* ``reject``   — the worker could not accept the request (queue full,
  unknown database, stopping); always retriable at the cluster level.
* ``pong``     — heartbeat answer with ``health`` and ``metrics``.
"""

from __future__ import annotations

import json
import socket
import struct
import time

from repro.errors import ReproError

_LENGTH = struct.Struct("!I")

# Frames are small control/response objects; anything near this bound is
# a protocol bug (e.g. unbounded result rows), not a legitimate message.
MAX_FRAME_BYTES = 8 * 1024 * 1024


class ProtocolError(ReproError):
    """Malformed or oversized frame, or a closed peer mid-frame."""


class PeerClosedError(ProtocolError):
    """The other end closed the connection at a frame boundary."""


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` and write one length-prefixed frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send {len(body)} byte frame (max {MAX_FRAME_BYTES})"
        )
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise on EOF."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if not chunks and remaining == count:
                raise PeerClosedError("peer closed the connection")
            raise ProtocolError(
                f"peer closed mid-frame ({count - remaining}/{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict:
    """Read one frame; raises :class:`PeerClosedError` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"{length} byte frame exceeds {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length) if length else b""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid frame payload: {exc}") from exc
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError("frame must be a JSON object with a string 'type'")
    return message


# --------------------------------------------------------- deadline budget


def remaining_budget_s(deadline: float, *, now: float | None = None) -> float:
    """Seconds left until a monotonic ``deadline`` (clamped at 0)."""
    now = time.monotonic() if now is None else now
    return max(0.0, deadline - now)


def budget_to_deadline(budget_s: float, *, now: float | None = None) -> float:
    """Re-anchor a received budget against the local monotonic clock."""
    now = time.monotonic() if now is None else now
    return now + max(0.0, float(budget_s))


# ------------------------------------------------------ frame constructors


def request_frame(
    request_id: int,
    question: str,
    database_id: str,
    *,
    beam_size: int | None,
    execute: bool,
    budget_s: float,
    inject_failure: bool = False,
    tenant_id: str | None = None,
    tenant_weight: int = 1,
    dialect: str | None = None,
) -> dict:
    # Tenant identity crosses the IPC boundary so worker-side fair
    # queueing and per-tenant metrics work without each worker holding
    # the registry; enforcement (auth/rate/quota) stays at the front
    # door, so the worker trusts these fields.  The dialect rides along
    # so each worker renders (and caches) in the requested flavor.
    return {
        "type": "request",
        "id": request_id,
        "question": question,
        "database_id": database_id,
        "beam_size": beam_size,
        "execute": execute,
        "budget_s": budget_s,
        "inject_failure": inject_failure,
        "tenant_id": tenant_id,
        "tenant_weight": tenant_weight,
        "dialect": dialect,
    }


def response_frame(request_id: int, payload: dict) -> dict:
    return {"type": "response", "id": request_id, "payload": payload}


def reject_frame(request_id: int, reason: str) -> dict:
    return {"type": "reject", "id": request_id, "reason": reason}


def ping_frame(ping_id: int) -> dict:
    return {"type": "ping", "id": ping_id}


def pong_frame(ping_id: int, health: dict, metrics: dict) -> dict:
    return {"type": "pong", "id": ping_id, "health": health, "metrics": metrics}


def ready_frame(worker_id: int, warm_s: float, databases: list[str]) -> dict:
    return {
        "type": "ready",
        "worker_id": worker_id,
        "warm_s": warm_s,
        "databases": databases,
    }


def shutdown_frame() -> dict:
    return {"type": "shutdown"}
