"""Multi-process sharded serving: supervisor, router, and front-end glue.

:class:`ClusterService` presents the same duck-typed surface as
:class:`~repro.serving.service.TranslationService` (``translate``,
``health``, ``metrics``, ``is_ready``), so the stdlib HTTP front-end
(:class:`~repro.serving.http.ServingServer`) serves a cluster without
changes.  Behind that surface it:

* forks N worker processes (fork start method; each worker builds its
  own ``TranslationService`` and warms only its shard's indexes),
* routes requests to workers by **consistent hashing** on ``db_id``
  (:class:`~repro.cluster.router.HashRing`) so each worker's schema and
  index caches stay hot for its shard,
* speaks the length-prefixed JSON protocol of
  :mod:`repro.cluster.protocol` with per-request ids, deadlines
  propagated as remaining budgets, and a bounded in-flight **window**
  per worker,
* supervises: heartbeat pings with miss-based hang detection, SIGKILL +
  automatic restart with exponential backoff, a circuit breaker that
  stops restarting a crash-looping worker, requeue-or-fail-fast for
  requests caught on a dead worker, and graceful drain on shutdown,
* aggregates metrics: ``/metrics`` merges every worker's snapshot with
  the supervisor's own counters and per-worker liveness gauges.

Failure semantics for one accepted request: it is either answered (200,
possibly degraded) or rejected with a *retriable* error
(:class:`~repro.serving.service.QueueFullError` → HTTP 503).  A request
in flight on a worker that dies is requeued once to another live worker
when its deadline allows; otherwise it fails fast with the retriable
rejection.  A request whose deadline expires while still queued
supervisor-side is rejected without ever occupying a worker slot.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.cluster import protocol
from repro.cluster.health import CircuitBreaker, ExponentialBackoff, WorkerStatus
from repro.concurrency import make_lock, make_rlock
from repro.logs import get_logger
from repro.cluster.router import HashRing
from repro.cluster.worker import WorkerSpec, worker_entry
from repro.metrics import (
    MetricsRegistry,
    merge_snapshots,
    render_snapshot_text,
)
from repro.serving.service import (
    QueueFullError,
    ServeResponse,
    UnknownDatabaseError,
)

_LOG = get_logger(__name__)


@dataclass
class ClusterConfig:
    """Supervision and routing knobs (defaults fit tests and smoke runs)."""

    workers: int = 2
    max_inflight: int = 16            # per-worker in-flight window
    dispatch_queue_size: int = 128    # supervisor-side bound per worker
    heartbeat_interval_s: float = 0.5
    heartbeat_misses: int = 6         # missed pongs before a kill
    ready_timeout_s: float = 120.0    # warm-up budget before a kill
    restart_backoff_initial_s: float = 0.25
    restart_backoff_max_s: float = 10.0
    breaker_max_failures: int = 5
    breaker_window_s: float = 60.0
    max_attempts: int = 2             # dispatch attempts per request
    ring_replicas: int = 64
    default_timeout_ms: float = 10_000.0


@dataclass
class _Pending:
    """One accepted request travelling through the cluster."""

    request_id: int
    question: str
    database_id: str
    beam_size: int | None
    execute: bool
    inject_failure: bool
    deadline: float                    # supervisor monotonic
    tenant_id: str | None = None
    tenant_weight: int = 1
    dialect: str | None = None
    attempts: int = 0
    excluded: set[int] = field(default_factory=set)
    done: threading.Event = field(default_factory=threading.Event)
    payload: dict | None = None
    reject_reason: str | None = None

    def resolve_payload(self, payload: dict) -> None:
        self.payload = payload
        self.done.set()

    def reject(self, reason: str) -> None:
        self.reject_reason = reason
        self.done.set()


_STOP = object()


class _WorkerHandle:
    """Supervisor-side state for one worker slot (survives restarts)."""

    def __init__(self, spec: WorkerSpec, config: ClusterConfig):
        self.spec = spec
        self.config = config
        self.worker_id = spec.worker_id
        self.status = WorkerStatus.STOPPED
        self.proc: multiprocessing.process.BaseProcess | None = None
        self.sock: socket.socket | None = None
        self.conn: protocol.FrameConnection | None = None
        self.incarnation = 0
        self.window = threading.Semaphore(config.max_inflight)
        self.dispatch: queue.Queue = queue.Queue(maxsize=config.dispatch_queue_size)
        self.pending: dict[int, _Pending] = {}  # guarded by: pending_lock
        self.pending_lock = make_lock(f"_WorkerHandle[{spec.worker_id}].pending_lock")
        self.send_lock = make_lock(f"_WorkerHandle[{spec.worker_id}].send_lock")
        self.ready_event = threading.Event()
        self.backoff = ExponentialBackoff(
            initial=config.restart_backoff_initial_s,
            max_delay=config.restart_backoff_max_s,
        )
        self.breaker = CircuitBreaker(
            max_failures=config.breaker_max_failures,
            window_s=config.breaker_window_s,
        )
        self.restart_at = 0.0
        self.started_at = 0.0
        self.ready_since = 0.0
        self.last_pong = 0.0
        self.restart_count = 0
        self.success_recorded = False
        self.health_snapshot: dict = {}
        self.metrics_snapshot: dict = {}

    @property
    def pid(self) -> int | None:
        return self.proc.pid if self.proc is not None else None

    def pending_count(self) -> int:
        """In-flight requests on this worker (consistent read)."""
        with self.pending_lock:
            return len(self.pending)


class _ClusterMetrics:
    """Fleet-wide metrics view: worker snapshots + supervisor counters."""

    def __init__(self, cluster: "ClusterService"):
        self._cluster = cluster

    def snapshot(self) -> dict:
        fleet = merge_snapshots(
            [h.metrics_snapshot for h in self._cluster.handles if h.metrics_snapshot]
        )
        fleet.update(self._cluster.registry.snapshot())
        return {"fleet": fleet, "workers": self._cluster.worker_states()}

    def render_text(self) -> str:
        data = self.snapshot()
        lines = [render_snapshot_text(data["fleet"]).rstrip("\n")]
        lines.append("# TYPE cluster_worker_up gauge")
        for worker_id, state in sorted(data["workers"].items()):
            up = 1 if state["status"] == WorkerStatus.READY.value else 0
            lines.append(f'cluster_worker_up{{worker="{worker_id}"}} {up}')
        lines.append("# TYPE cluster_worker_restarts counter")
        for worker_id, state in sorted(data["workers"].items()):
            lines.append(
                f'cluster_worker_restarts{{worker="{worker_id}"}} '
                f'{state["restarts"]}'
            )
        return "\n".join(lines) + "\n"


class ClusterService:
    """Supervisor + router front-end over N forked serving workers.

    Args:
        databases: ``(db_id, sqlite_path)`` pairs — cluster workers open
            databases by path, so in-memory databases cannot be served.
        model_path: saved model directory (``None`` = heuristic-only).
        config: supervision/routing knobs.
        metrics: supervisor-local registry (created when omitted);
            worker-side serving metrics are merged in at scrape time.
        tenancy: optional :class:`~repro.tenancy.controller.TenancyController`
            — admission (auth/rate/quota) runs in the supervisor's HTTP
            front-end; workers only receive the already-admitted tenant
            identity over IPC for fair queueing and per-tenant metrics.
        spec_defaults: extra :class:`WorkerSpec` fields applied to every
            worker (threads, queue_size, per_tenant_depth, cache sizing,
            index_cache, ...).
    """

    def __init__(
        self,
        databases: list[tuple[str, str]],
        *,
        model_path: str | None = None,
        config: ClusterConfig | None = None,
        metrics: MetricsRegistry | None = None,
        verbose: bool = False,
        tenancy=None,
        **spec_defaults,
    ):
        if not databases:
            raise ValueError("need at least one (db_id, path) database")
        self.databases = [(str(db_id), str(path)) for db_id, path in databases]
        self.database_ids = {db_id for db_id, _ in self.databases}
        if len(self.database_ids) != len(self.databases):
            raise ValueError("duplicate database ids")
        self.config = config or ClusterConfig()
        if self.config.workers < 1:
            raise ValueError("cluster needs at least one worker")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError("cluster serving requires the fork start method")
        self._ctx = multiprocessing.get_context("fork")
        self.verbose = verbose
        self.ring = HashRing(
            range(self.config.workers), replicas=self.config.ring_replicas
        )
        shards = self.ring.shards(sorted(self.database_ids))
        self.handles = [
            _WorkerHandle(
                WorkerSpec(
                    worker_id=worker_id,
                    databases=tuple(self.databases),
                    shard=tuple(shards[worker_id]),
                    model_path=model_path,
                    default_timeout_ms=self.config.default_timeout_ms,
                    max_inflight=self.config.max_inflight,
                    **spec_defaults,
                ),
                self.config,
            )
            for worker_id in range(self.config.workers)
        ]
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.metrics = _ClusterMetrics(self)
        self.tenancy = tenancy
        # The /admin/refresh route broadcasts only when workers actually
        # run a refresher (spec_defaults carry the interval to them).
        self.refresh_enabled = (
            spec_defaults.get("kb_refresh_interval_s") is not None
        )
        self._ids = itertools.count(1)
        self._ping_ids = itertools.count(1)
        self._lock = make_rlock("ClusterService._lock")
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        # Epoch stamp is for human display only; uptime math uses the
        # monotonic twin below (see WALLCLOCK in docs/analysis-rules.md).
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        m = self.registry
        self._requests_total = m.counter(
            "cluster_requests_total", "requests accepted by the front-end")
        self._rejected_total = m.counter(
            "cluster_rejected_total", "requests rejected (retriable)")
        self._expired_total = m.counter(
            "cluster_expired_total",
            "requests whose deadline expired before occupying a worker slot")
        self._requeued_total = m.counter(
            "cluster_requeued_total", "requests requeued off a dead worker")
        self._restarts_total = m.counter(
            "cluster_worker_restarts_total", "worker processes restarted")
        self._workers_alive = m.gauge(
            "cluster_workers_alive", "workers currently READY")
        self._workers_broken = m.gauge(
            "cluster_workers_broken", "worker slots with an open circuit breaker")

    # ------------------------------------------------------------ logging

    def _log(self, message: str) -> None:
        if self.verbose:
            _LOG.info("[cluster] %s", message)

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "ClusterService":
        if self._started:
            return self
        self._started = True
        self._stopping = False
        with self._lock:
            for handle in self.handles:
                self._spawn_locked(handle)
        for handle in self.handles:
            thread = threading.Thread(
                target=self._dispatch_loop,
                args=(handle,),
                name=f"cluster-dispatch-{handle.worker_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        supervisor = threading.Thread(
            target=self._supervise_loop, name="cluster-supervise", daemon=True
        )
        supervisor.start()
        self._threads.append(supervisor)
        return self

    def wait_ready(self, timeout: float = 60.0) -> bool:
        """Block until the fleet is ready (or the timeout expires)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.is_ready():
                return True
            time.sleep(0.05)
        return self.is_ready()

    def stop(self, *, timeout: float = 15.0, drain: bool = True) -> bool:
        """Graceful shutdown: stop accepting, flush, join workers.

        Returns True when the drain was clean (no request abandoned).
        """
        if not self._started:
            return True
        self._stopping = True
        deadline = time.monotonic() + max(0.0, timeout)
        clean = True
        if drain:
            clean = self._drain(deadline)
        for handle in self.handles:
            handle.dispatch.put(_STOP)
        with self._lock:
            for handle in self.handles:
                handle.status = WorkerStatus.STOPPED
                if handle.conn is not None:
                    try:
                        with handle.send_lock:
                            handle.conn.send(protocol.shutdown_frame())
                    except OSError:
                        pass
        for handle in self.handles:
            proc = handle.proc
            if proc is None:
                continue
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
                clean = False
        with self._lock:
            for handle in self.handles:
                self._fail_pending_locked(handle, "cluster is shutting down")
                if handle.sock is not None:
                    try:
                        handle.sock.close()
                    except OSError:
                        pass
                    handle.sock = None
        self._started = False
        return clean

    def _drain(self, deadline: float) -> bool:
        while time.monotonic() < deadline:
            busy = any(
                not handle.dispatch.empty() or handle.pending_count() > 0
                for handle in self.handles
            )
            if not busy:
                return True
            time.sleep(0.02)
        return False

    def __enter__(self) -> "ClusterService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------ spawning

    def _spawn_locked(self, handle: _WorkerHandle) -> None:
        """Fork one worker (callers hold ``self._lock``)."""
        parent, child = socket.socketpair()
        handle.incarnation += 1
        handle.sock = parent
        # Binary fast path on by default: request frames are small, but
        # the worker's responses (rows, candidates) ride the same class
        # of connection, so both directions keep reusable buffers.
        handle.conn = protocol.FrameConnection(parent, binary=True)
        handle.window = threading.Semaphore(self.config.max_inflight)
        handle.status = WorkerStatus.STARTING
        handle.started_at = time.monotonic()
        handle.last_pong = time.monotonic()
        handle.success_recorded = False
        handle.ready_event.clear()
        proc = self._ctx.Process(
            target=worker_entry,
            args=(handle.spec, child),
            name=f"repro-cluster-worker-{handle.worker_id}",
            daemon=True,
        )
        proc.start()
        child.close()  # the worker owns its end now
        handle.proc = proc
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle, handle.conn, handle.incarnation, handle.window),
            name=f"cluster-recv-{handle.worker_id}.{handle.incarnation}",
            daemon=True,
        )
        receiver.start()
        self._log(
            f"worker {handle.worker_id} spawned "
            f"(pid={proc.pid}, incarnation={handle.incarnation}, "
            f"shard={list(handle.spec.shard)})"
        )

    # ---------------------------------------------------------- submission

    def translate(
        self,
        question: str,
        database_id: str | None = None,
        *,
        beam_size: int | None = None,
        execute: bool = False,
        timeout_ms: float | None = None,
        inject_failure: bool = False,
        tenant_id: str | None = None,
        tenant_weight: int = 1,
        dialect: str | None = None,
    ) -> ServeResponse:
        """Route one request to its shard's worker and wait for the answer.

        Raises :class:`UnknownDatabaseError` for unknown databases and
        :class:`QueueFullError` for every retriable rejection (no live
        worker, dispatch queue full, deadline expired in queue, worker
        died with no requeue budget left).  ``dialect`` is validated at
        the front door (ValueError -> HTTP 400) and rides the IPC frame.
        """
        if dialect is not None:
            from repro.errors import TranslationError
            from repro.sql.dialect import get_dialect

            try:
                dialect = get_dialect(dialect).name
            except TranslationError as exc:
                raise ValueError(str(exc)) from None
        if self._stopping or not self._started:
            raise QueueFullError("cluster is not accepting requests")
        if database_id is None:
            if len(self.database_ids) != 1:
                raise UnknownDatabaseError(
                    "database_id is required when serving multiple databases"
                )
            database_id = next(iter(self.database_ids))
        elif database_id not in self.database_ids:
            raise UnknownDatabaseError(
                f"unknown database {database_id!r}; serving: "
                + ", ".join(sorted(self.database_ids))
            )
        timeout_s = (
            timeout_ms if timeout_ms is not None else self.config.default_timeout_ms
        ) / 1000.0
        pending = _Pending(
            request_id=next(self._ids),
            question=question,
            database_id=database_id,
            beam_size=int(beam_size) if beam_size is not None else None,
            execute=bool(execute),
            inject_failure=bool(inject_failure),
            deadline=time.monotonic() + max(0.0, timeout_s),
            tenant_id=tenant_id,
            tenant_weight=max(1, int(tenant_weight)),
            dialect=dialect,
        )
        if not self._enqueue(pending):
            self._rejected_total.inc()
            raise QueueFullError(pending.reject_reason or "no live worker")
        self._requests_total.inc()
        # Workers enforce the deadline; the generous cap only guards
        # against a supervisor bug wedging the bookkeeping.
        if not pending.done.wait(timeout=max(0.0, timeout_s) + 60.0):
            pending.reject("internal timeout: request lost in the cluster")
        if pending.payload is not None:
            return ServeResponse.from_dict(pending.payload)
        self._rejected_total.inc()
        raise QueueFullError(pending.reject_reason or "request rejected")

    def _routable(self, exclude: set[int]) -> list[int]:
        """Workers that may receive new traffic, READY ones first."""
        ready = [
            h.worker_id
            for h in self.handles
            if h.status is WorkerStatus.READY and h.worker_id not in exclude
        ]
        if ready:
            return ready
        # No READY worker: route to ones that are coming up — the
        # dispatcher waits for readiness within the request's deadline.
        return [
            h.worker_id
            for h in self.handles
            if h.status in (WorkerStatus.STARTING, WorkerStatus.UNHEALTHY,
                            WorkerStatus.RESTARTING)
            and h.worker_id not in exclude
        ]

    def _enqueue(self, pending: _Pending) -> bool:
        """Place ``pending`` on its preferred worker's dispatch queue."""
        order = self.ring.preference(
            pending.database_id, self._routable(pending.excluded)
        )
        if not order:
            pending.reject("no live worker for this database's shard")
            return False
        pending.attempts += 1
        handle = self.handles[order[0]]
        try:
            handle.dispatch.put_nowait(pending)
        except queue.Full:
            pending.reject(
                f"worker {handle.worker_id} dispatch queue is full "
                f"({handle.dispatch.maxsize} deep)"
            )
            return False
        return True

    # ----------------------------------------------------------- dispatch

    def _dispatch_loop(self, handle: _WorkerHandle) -> None:
        """Drain one worker's dispatch queue into its IPC socket."""
        while True:
            item = handle.dispatch.get()
            if item is _STOP:
                return
            now = time.monotonic()
            if now >= item.deadline:
                # Expired while queued: reject WITHOUT occupying a slot.
                self._expired_total.inc()
                item.reject("deadline expired while queued for a worker")
                continue
            if not handle.ready_event.wait(timeout=item.deadline - now):
                self._expired_total.inc()
                item.reject("deadline expired waiting for a live worker")
                continue
            if handle.status is not WorkerStatus.READY:
                self._requeue(item, from_worker=handle.worker_id)
                continue
            window = handle.window
            remaining = item.deadline - time.monotonic()
            if remaining <= 0 or not window.acquire(timeout=remaining):
                self._expired_total.inc()
                item.reject("deadline expired waiting for a worker slot")
                continue
            with handle.pending_lock:
                handle.pending[item.request_id] = item
            frame = protocol.request_frame(
                item.request_id,
                item.question,
                item.database_id,
                beam_size=item.beam_size,
                execute=item.execute,
                budget_s=protocol.remaining_budget_s(item.deadline),
                inject_failure=item.inject_failure,
                tenant_id=item.tenant_id,
                tenant_weight=item.tenant_weight,
                dialect=item.dialect,
            )
            try:
                with handle.send_lock:
                    handle.conn.send(frame)
            except (OSError, protocol.ProtocolError):
                with handle.pending_lock:
                    handle.pending.pop(item.request_id, None)
                window.release()
                self._requeue(item, from_worker=handle.worker_id)

    def _requeue(self, item: _Pending, *, from_worker: int) -> None:
        """Requeue-or-fail-fast for a request caught on a dead worker."""
        item.excluded.add(from_worker)
        if item.done.is_set():
            return
        if (
            item.attempts >= self.config.max_attempts
            or time.monotonic() >= item.deadline
        ):
            item.reject(
                f"worker {from_worker} died while handling the request "
                f"(no retry budget left)"
            )
            return
        self._requeued_total.inc()
        if not self._enqueue(item):
            pass  # _enqueue already rejected with its reason

    # ----------------------------------------------------------- receiving

    def _receive_loop(
        self,
        handle: _WorkerHandle,
        conn: protocol.FrameConnection,
        incarnation: int,
        window: threading.Semaphore,
    ) -> None:
        try:
            while True:
                frame = conn.recv()
                kind = frame.get("type")
                if kind == "response":
                    item = self._pop_pending(handle, frame.get("id"))
                    if item is not None:
                        item.resolve_payload(frame.get("payload") or {})
                        window.release()
                elif kind == "reject":
                    item = self._pop_pending(handle, frame.get("id"))
                    if item is not None:
                        item.reject(frame.get("reason", "worker rejected"))
                        window.release()
                elif kind == "pong":
                    handle.last_pong = time.monotonic()
                    handle.health_snapshot = frame.get("health") or {}
                    handle.metrics_snapshot = frame.get("metrics") or {}
                elif kind == "ready":
                    self._on_ready(handle, incarnation, frame)
        except (protocol.ProtocolError, OSError):
            pass
        finally:
            self._on_connection_lost(handle, incarnation)

    def _pop_pending(self, handle: _WorkerHandle, request_id) -> _Pending | None:
        with handle.pending_lock:
            return handle.pending.pop(request_id, None)

    def _on_ready(self, handle: _WorkerHandle, incarnation: int, frame: dict) -> None:
        with self._lock:
            if incarnation != handle.incarnation:
                return
            handle.status = WorkerStatus.READY
            handle.ready_since = time.monotonic()
            handle.last_pong = time.monotonic()
            handle.ready_event.set()
            self._refresh_worker_gauges_locked()
        self._log(
            f"worker {handle.worker_id} ready "
            f"(warm={frame.get('warm_s', 0.0):.2f}s, "
            f"databases={frame.get('databases')})"
        )

    # --------------------------------------------------------- supervision

    def _on_connection_lost(self, handle: _WorkerHandle, incarnation: int) -> None:
        """A worker's socket broke: fail over and schedule the restart."""
        with self._lock:
            if incarnation != handle.incarnation or self._stopping:
                return
            if handle.status is WorkerStatus.STOPPED:
                return
            handle.ready_event.clear()
            proc = handle.proc
            if proc is not None and proc.is_alive():
                proc.kill()  # half-dead (socket gone, process lingering)
            broken = handle.breaker.record_failure()
            handle.status = (
                WorkerStatus.BROKEN if broken else WorkerStatus.RESTARTING
            )
            if not broken:
                handle.restart_at = time.monotonic() + handle.backoff.next_delay()
            with handle.pending_lock:
                orphans = list(handle.pending.values())
                handle.pending.clear()
            self._refresh_worker_gauges_locked()
        self._log(
            f"worker {handle.worker_id} connection lost "
            f"({'circuit broken' if broken else 'restart scheduled'}, "
            f"{len(orphans)} in flight)"
        )
        for item in orphans:
            self._requeue(item, from_worker=handle.worker_id)
        # Anything still queued supervisor-side re-routes as well: the
        # dispatcher will requeue them when it sees the non-READY status,
        # so nothing accepted is silently dropped.

    def _fail_pending_locked(self, handle: _WorkerHandle, reason: str) -> None:
        with handle.pending_lock:
            orphans = list(handle.pending.values())
            handle.pending.clear()
        for item in orphans:
            item.reject(reason)
        while True:
            try:
                item = handle.dispatch.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP:
                item.reject(reason)

    def _refresh_worker_gauges_locked(self) -> None:
        self._workers_alive.set(sum(
            1 for h in self.handles if h.status is WorkerStatus.READY
        ))
        self._workers_broken.set(sum(
            1 for h in self.handles if h.status is WorkerStatus.BROKEN
        ))

    def _supervise_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        hang_budget = interval * self.config.heartbeat_misses
        while not self._stopping:
            time.sleep(interval)
            if self._stopping:
                return
            now = time.monotonic()
            for handle in self.handles:
                with self._lock:
                    status = handle.status
                    if status is WorkerStatus.RESTARTING and now >= handle.restart_at:
                        self._restarts_total.inc()
                        handle.restart_count += 1
                        self._spawn_locked(handle)
                        continue
                    proc = handle.proc
                    if (
                        status in (WorkerStatus.STARTING, WorkerStatus.READY)
                        and proc is not None
                        and not proc.is_alive()
                    ):
                        # The receiver's EOF usually notices first; this
                        # is the belt-and-braces path for lost sockets.
                        incarnation = handle.incarnation
                    else:
                        incarnation = None
                if incarnation is not None:
                    self._on_connection_lost(handle, incarnation)
                    continue
                if status is WorkerStatus.READY:
                    if now - handle.last_pong > hang_budget:
                        self._log(
                            f"worker {handle.worker_id} missed "
                            f"{self.config.heartbeat_misses} heartbeats; killing"
                        )
                        with self._lock:
                            handle.status = WorkerStatus.UNHEALTHY
                            if handle.proc is not None and handle.proc.is_alive():
                                handle.proc.kill()
                        continue
                    if (
                        not handle.success_recorded
                        and now - handle.ready_since > 5 * interval
                    ):
                        handle.breaker.record_success()
                        handle.backoff.reset()
                        handle.success_recorded = True
                    try:
                        with handle.send_lock:
                            handle.conn.send(
                                protocol.ping_frame(next(self._ping_ids))
                            )
                    except (OSError, protocol.ProtocolError):
                        pass  # receiver EOF handles the fallout
                elif status is WorkerStatus.STARTING:
                    if now - handle.started_at > self.config.ready_timeout_s:
                        self._log(
                            f"worker {handle.worker_id} warm-up timed out; killing"
                        )
                        with self._lock:
                            if handle.proc is not None and handle.proc.is_alive():
                                handle.proc.kill()

    # ------------------------------------------------------------- health

    def is_ready(self) -> bool:
        """Ready when every non-broken worker is READY (and one exists)."""
        if self._stopping or not self._started:
            return False
        ready = 0
        for handle in self.handles:
            if handle.status is WorkerStatus.READY:
                ready += 1
            elif handle.status is not WorkerStatus.BROKEN:
                return False
        return ready > 0

    def worker_states(self) -> dict[str, dict]:
        now = time.monotonic()
        states = {}
        for handle in self.handles:
            states[str(handle.worker_id)] = {
                "status": handle.status.value,
                "pid": handle.pid,
                "restarts": handle.restart_count,
                "shard": sorted(handle.spec.shard),
                "breaker_open": handle.breaker.open,
                "last_pong_age_s": (
                    round(now - handle.last_pong, 3) if handle.last_pong else None
                ),
                "inflight": handle.pending_count(),
                "dispatch_depth": handle.dispatch.qsize(),
            }
        return states

    def health(self) -> dict:
        return {
            "status": "stopping" if self._stopping else (
                "ok" if self._started else "idle"),
            "mode": "cluster",
            "ready": self.is_ready(),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "databases": sorted(self.database_ids),
            "workers": self.worker_states(),
            "shards": {
                str(w): sorted(h.spec.shard)
                for w, h in enumerate(self.handles)
            },
        }

    # ------------------------------------------------------------ refresh

    def trigger_refresh(self, database_id: str | None = None) -> int:
        """Broadcast a KB-refresh frame to every READY worker.

        Returns how many workers received the frame.  Each worker's
        refresher rebuilds off-path and swaps locally; there is nothing
        to wait for at the supervisor (SIGHUP and ``POST /admin/refresh``
        both come through here).
        """
        sent = 0
        for handle in self.handles:
            with self._lock:
                ready = handle.status is WorkerStatus.READY
                conn = handle.conn
            if not ready or conn is None:
                continue
            try:
                with handle.send_lock:
                    conn.send(protocol.refresh_frame(database_id))
                sent += 1
            except (OSError, protocol.ProtocolError):
                # A broken socket here is a worker death in progress; the
                # receiver's EOF path restarts it and the next trigger
                # reaches the replacement.
                self._log(
                    f"refresh frame to worker {handle.worker_id} failed"
                )
        return sent

    # ------------------------------------------------------------- chaos

    def kill_worker(self, worker_id: int) -> int | None:
        """SIGKILL one worker (fault injection for smoke tests); returns pid."""
        handle = self.handles[worker_id]
        pid = handle.pid
        if pid is not None:
            os.kill(pid, 9)
        return pid
