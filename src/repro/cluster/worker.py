"""The cluster worker process: one TranslationService behind an IPC socket.

A worker is a full single-process serving stack — per-shard warmed
:class:`~repro.index.registry.IndexRegistry`, per-database runtimes, a
:class:`~repro.serving.service.TranslationService` with its own thread
pool, micro-batching, cache, and metrics — minus the HTTP layer: the
supervisor owns the listening socket and feeds the worker requests over
one :mod:`repro.cluster.protocol` connection.

Shard semantics: the worker *hosts* every database the cluster serves
(it knows all the paths) but eagerly opens and warms only the databases
in its ``shard``.  When the supervisor fails traffic over from a dead
sibling, the worker adopts the foreign database lazily on first request
— slower for that first request, but no worker pays memory or startup
time for indexes it is not routed.

Concurrency: a reader thread receives frames; requests are handed to a
bounded executor (the supervisor's in-flight window keeps it from ever
being the backlog), and every handler thread serializes its writes with
one send lock.  Heartbeat pings are answered inline by the reader thread
so they measure event-loop liveness, not translation throughput; a
worker wedged hard enough to stop reading frames stops ponging and gets
killed and restarted by the supervisor.
"""

from __future__ import annotations

import signal
import socket
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.cluster import protocol
from repro.concurrency import make_lock
from repro.db.database import Database
from repro.index.registry import IndexRegistry, set_default_registry
from repro.serving.cache import TranslationCache
from repro.serving.runtime import DatabaseRuntime
from repro.serving.service import (
    QueueFullError,
    ServiceStoppedError,
    TranslationService,
    UnknownDatabaseError,
)


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to build its serving stack (picklable)."""

    worker_id: int
    databases: tuple[tuple[str, str], ...]  # (db_id, sqlite path)
    shard: tuple[str, ...]                  # db ids this worker owns
    model_path: str | None = None
    beam_size: int = 1
    threads: int = 4
    queue_size: int = 64
    max_batch: int = 8
    batch_window_ms: float = 2.0
    cache_size: int = 256
    cache_ttl_s: float = 300.0
    default_timeout_ms: float = 10_000.0
    index_cache: str | None = None
    allow_failure_injection: bool = False
    execution_timeout_s: float | None = 5.0
    execution_max_rows: int | None = 10_000
    max_inflight: int = 16
    per_tenant_depth: int | None = None
    policy_path: str | None = None  # JSON policy config (see repro.policy)
    dialect: str = "sqlite"         # default response dialect
    # Live schema evolution (see repro.evolve): poll interval for the
    # per-worker background KB refresher (None = disabled) and an
    # optional directory for schema-driven corpus growth (each worker
    # writes its own shard's examples to worker-<id>.jsonl there).
    kb_refresh_interval_s: float | None = None
    kb_corpus_dir: str | None = None


class WorkerProcess:
    """Runtime state of one worker process (constructed *inside* it)."""

    def __init__(self, spec: WorkerSpec, sock: socket.socket):
        self.spec = spec
        self.sock = sock
        # Binary fast path: response payloads (SQL, rows, candidate
        # lists) skip json escaping; the supervisor auto-detects.
        self._conn = protocol.FrameConnection(sock, binary=True)
        self._send_lock = make_lock(f"WorkerProcess[{spec.worker_id}]._send_lock")
        self._adopt_lock = make_lock(f"WorkerProcess[{spec.worker_id}]._adopt_lock")
        self._paths = dict(spec.databases)
        self._databases: dict[str, Database] = {}  # guarded by: _adopt_lock
        self.registry = IndexRegistry(cache_dir=spec.index_cache)
        set_default_registry(self.registry)
        self.model = None
        if spec.model_path is not None:
            from repro.model import ValueNetModel

            self.model = ValueNetModel.load(spec.model_path)
        self.policy = None
        if spec.policy_path is not None:
            from repro.policy import PolicyConfigStore, PolicyEngine

            self.policy = PolicyEngine(PolicyConfigStore.load(spec.policy_path))
        self.service: TranslationService | None = None
        self.refresher = None  # started in warm_and_start when configured
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, spec.max_inflight),
            thread_name_prefix=f"cluster-worker-{spec.worker_id}",
        )

    # ----------------------------------------------------------- lifecycle

    def warm_and_start(self) -> float:
        """Open + warm the shard, start the service; returns warm seconds."""
        start = time.perf_counter()
        with self._adopt_lock:
            shard = {
                db_id: self._open_locked(db_id)
                for db_id in self.spec.shard
                if db_id in self._paths
            }
        self.registry.warm(shard)
        runtimes = [self._make_runtime(db_id, db) for db_id, db in shard.items()]
        self.service = TranslationService(
            runtimes,
            workers=self.spec.threads,
            queue_size=self.spec.queue_size,
            per_tenant_depth=self.spec.per_tenant_depth,
            max_batch=self.spec.max_batch,
            batch_window_ms=self.spec.batch_window_ms,
            cache=TranslationCache(
                capacity=self.spec.cache_size, ttl_s=self.spec.cache_ttl_s
            ),
            default_timeout_ms=self.spec.default_timeout_ms,
            allow_failure_injection=self.spec.allow_failure_injection,
            ready=False,
            allow_empty=True,  # an empty shard adopts databases on failover
            policy=self.policy,
        )
        self.service.start()
        self.service.mark_ready()
        if self.spec.kb_refresh_interval_s is not None:
            self._start_refresher(shard)
        return time.perf_counter() - start

    def _start_refresher(self, shard: dict[str, Database]) -> None:
        """Per-worker background KB refresher over this worker's shard."""
        from pathlib import Path

        from repro.evolve import KBRefresher

        corpus_path = None
        if self.spec.kb_corpus_dir is not None:
            corpus_path = (
                Path(self.spec.kb_corpus_dir)
                / f"worker-{self.spec.worker_id}.jsonl"
            )
        self.refresher = KBRefresher(
            registry=self.registry,
            interval_s=self.spec.kb_refresh_interval_s,
            metrics=self.service.metrics,
            corpus_path=corpus_path,
            corpus_policy=self.policy,
        )
        for db_id, database in shard.items():
            self.refresher.watch(database, database_id=db_id)
        self.refresher.attach_service(self.service)
        self.refresher.start()

    def _open_locked(self, db_id: str) -> Database:
        """Open (or reuse) a hosted database; caller holds ``_adopt_lock``."""
        database = self._databases.get(db_id)
        if database is None:
            database = Database.open(self._paths[db_id])
            self._databases[db_id] = database
        return database

    def _make_runtime(self, db_id: str, database: Database) -> DatabaseRuntime:
        return DatabaseRuntime(
            database,
            self.model,
            database_id=db_id,
            beam_size=self.spec.beam_size,
            execution_timeout_s=self.spec.execution_timeout_s,
            execution_max_rows=self.spec.execution_max_rows,
            policy=self.policy,
            dialect=self.spec.dialect,
        )

    def _adopt(self, db_id: str) -> bool:
        """Lazily host a database outside this worker's shard (failover)."""
        if db_id not in self._paths:
            return False
        with self._adopt_lock:
            if db_id in self.service.runtimes:
                return True
            database = self._open_locked(db_id)
            runtime = self._make_runtime(db_id, database)
            self.service.add_runtime(runtime)
        if self.refresher is not None:
            # Failover traffic keeps flowing here until the sibling is
            # back; the adopted database drifts like any other.
            self.refresher.watch(database, database_id=db_id)
        return True

    # -------------------------------------------------------------- frames

    def send(self, frame: dict) -> None:
        with self._send_lock:
            self._conn.send(frame)

    def _handle_request(self, frame: dict) -> None:
        request_id = frame["id"]
        db_id = frame.get("database_id") or ""
        try:
            if db_id not in self.service.runtimes and not self._adopt(db_id):
                raise UnknownDatabaseError(f"unknown database {db_id!r}")
            budget_s = max(0.0, float(frame.get("budget_s", 0.0)))
            tenant_id = frame.get("tenant_id")
            response = self.service.translate(
                frame["question"],
                db_id,
                beam_size=frame.get("beam_size"),
                execute=bool(frame.get("execute", False)),
                timeout_ms=budget_s * 1000.0,
                inject_failure=bool(frame.get("inject_failure", False)),
                tenant_id=str(tenant_id) if tenant_id is not None else None,
                tenant_weight=int(frame.get("tenant_weight", 1)),
                dialect=frame.get("dialect"),
            )
            self.send(protocol.response_frame(request_id, response.as_dict()))
        except (QueueFullError, ServiceStoppedError, UnknownDatabaseError) as exc:
            self.send(protocol.reject_frame(request_id, str(exc)))
        except OSError:  # supervisor went away; the loop will exit on EOF
            pass
        except Exception as exc:  # justified: reject frame reports the failure upstream
            try:
                self.send(protocol.reject_frame(request_id, f"worker error: {exc}"))
            except OSError:
                pass

    def _health(self) -> dict:
        health = self.service.health() if self.service is not None else {}
        health["worker_id"] = self.spec.worker_id
        health["shard"] = sorted(self.spec.shard)
        health["registry"] = self.registry.stats()
        return health

    def _metrics_snapshot(self) -> dict:
        if self.service is None:
            return {}
        return self.service.metrics.snapshot()

    # ---------------------------------------------------------------- loop

    def run(self) -> int:
        warm_s = self.warm_and_start()
        self.send(
            protocol.ready_frame(
                self.spec.worker_id, warm_s, sorted(self.service.runtimes)
            )
        )
        try:
            while True:
                try:
                    frame = self._conn.recv()
                except (protocol.ProtocolError, OSError):
                    break  # supervisor died or closed; exit with it
                kind = frame.get("type")
                if kind == "request":
                    self._pool.submit(self._handle_request, frame)
                elif kind == "ping":
                    # Answered inline: measures frame-loop liveness.
                    try:
                        self.send(protocol.pong_frame(
                            frame.get("id", 0),
                            self._health(),
                            self._metrics_snapshot(),
                        ))
                    except OSError:
                        break
                elif kind == "refresh":
                    if self.refresher is not None:
                        # Async trigger: the refresher's own thread does
                        # the rebuild, so the frame loop stays responsive
                        # to pings during a refresh.
                        self.refresher.trigger()
                elif kind == "shutdown":
                    break
        finally:
            self._pool.shutdown(wait=True)
            if self.refresher is not None:
                self.refresher.stop(timeout=5.0)
            if self.service is not None:
                self.service.drain(timeout=5.0)
            with self._adopt_lock:
                databases = list(self._databases.values())
            for database in databases:
                database.close()
            try:
                self.sock.close()
            except OSError:
                pass
        return 0


def worker_entry(spec: WorkerSpec, sock: socket.socket) -> None:
    """Process entry point (target of ``multiprocessing.Process``)."""
    # Ctrl+C hits the whole process group; the supervisor coordinates
    # shutdown (shutdown frame, then SIGKILL) — workers must not race it.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        code = WorkerProcess(spec, sock).run()
    except Exception as exc:  # justified: fatal startup error goes to stderr, exit code 1
        sys.stderr.write(f"[cluster-worker-{spec.worker_id}] fatal: {exc}\n")
        code = 1
    raise SystemExit(code)
