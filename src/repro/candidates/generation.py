"""Value candidate generation (paper Section IV-B2).

Three mechanisms expand extracted spans into candidates:

1. **Similarity** — scan the database (via the blocked similarity index)
   for values within a Damerau-Levenshtein threshold of the span.
2. **Handcrafted heuristics** — gender/boolean/ordinal/month rewrites
   (:mod:`repro.candidates.heuristics`).
3. **n-grams** — every contiguous sub-sequence of a multi-token span is a
   candidate seed, and each seed is also run through the similarity scan
   ("Kennedy International Airport" -> "Kennedy" -> DB value "JFK" is
   found because the *n-gram* matches an airport-name fragment).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.candidates.heuristics import question_word_candidates, span_candidates
from repro.candidates.types import ValueCandidate, dedupe_candidates
from repro.index.similarity import SimilaritySearcher
from repro.ner.types import ExtractedValue, SpanKind
from repro.text.ngrams import all_ngrams


@dataclass(frozen=True)
class GenerationConfig:
    """Tuning knobs for candidate generation.

    Attributes:
        max_distance: Damerau-Levenshtein threshold for similarity search.
        max_similar_per_span: cap on similarity results per span.
        max_ngram: longest n-gram expanded from multi-token spans.
        max_candidates: global cap (the paper observes too many candidates
            hurt accuracy; Section IV-B3).
    """

    max_distance: int = 2
    max_similar_per_span: int = 8
    max_ngram: int = 3
    max_candidates: int = 40


class CandidateGenerator:
    """Expands extracted spans into value candidates for one database."""

    def __init__(
        self,
        searcher: SimilaritySearcher | None,
        config: GenerationConfig | None = None,
    ):
        self._searcher = searcher
        self._config = config or GenerationConfig()

    def generate(
        self,
        question_words: list[str],
        spans: list[ExtractedValue],
    ) -> list[ValueCandidate]:
        """All candidates for a question, deduplicated, longest-seed first."""
        candidates: list[ValueCandidate] = []

        for span in spans:
            candidates.extend(self._candidates_for_span(span))

        candidates.extend(question_word_candidates(question_words))
        deduped = dedupe_candidates(candidates)
        return deduped[: self._config.max_candidates]

    # ------------------------------------------------------------ helpers

    def _candidates_for_span(self, span: ExtractedValue) -> list[ValueCandidate]:
        candidates: list[ValueCandidate] = []

        # The span itself is always a candidate (numbers: the only one).
        candidates.append(self._verbatim(span))

        # Handcrafted rewrites (ordinal -> int, month -> wildcard).
        candidates.extend(span_candidates(span))

        if span.kind in (SpanKind.NUMBER, SpanKind.YEAR, SpanKind.ORDINAL):
            # "for numeric values the extracted value itself is most likely
            # the only necessary candidate" (Section IV-B2)
            return candidates

        # Similarity search on the full span ...
        candidates.extend(self._similar(span.text))

        # ... and on its n-grams for multi-token spans.
        words = span.text.split()
        if len(words) > 1:
            for gram in all_ngrams(words, max_n=self._config.max_ngram):
                gram_text = " ".join(gram)
                if gram_text.lower() == span.text.lower():
                    continue
                candidates.append(ValueCandidate(gram_text, "ngram"))
                candidates.extend(self._similar(gram_text))
        return candidates

    def _verbatim(self, span: ExtractedValue) -> ValueCandidate:
        if span.kind in (SpanKind.NUMBER, SpanKind.YEAR):
            text = span.text
            value: object = float(text) if "." in text else int(text)
        else:
            value = span.text
        source = "question"
        return ValueCandidate(value, source)

    def _similar(self, text: str) -> list[ValueCandidate]:
        if self._searcher is None:
            return []
        matches = self._searcher.search(
            text,
            max_distance=self._config.max_distance,
            max_results=self._config.max_similar_per_span,
        )
        return [
            ValueCandidate(match.value, "similarity", locations=(match.location,))
            for match in matches
        ]
