"""Value candidate validation (paper Section IV-B3).

Candidates are checked against the database content with *exact*
(normalized) matches; candidates not found anywhere are dropped — except
the two classes the paper explicitly exempts:

* **numeric values** (``top 3`` is a LIMIT, never stored in a column), and
* **quoted values** (``starting with "goodbye"`` needs a wildcard match,
  and wildcard validation produces too many false positives).

Validation also *registers the locations* (table, column) where each
surviving candidate was found; the encoder consumes these locations
(Section IV-B4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.candidates.types import ValueCandidate, dedupe_candidates
from repro.index.inverted import InvertedIndex


def _is_numeric(candidate: ValueCandidate) -> bool:
    if isinstance(candidate.value, (int, float)):
        return True
    text = str(candidate.value)
    return text.replace(".", "", 1).replace("-", "", 1).isdigit()


def _is_wildcard(candidate: ValueCandidate) -> bool:
    return isinstance(candidate.value, str) and "%" in candidate.value


@dataclass(frozen=True)
class ValidationConfig:
    """Tuning knobs for validation.

    Attributes:
        keep_quoted: keep quoted-span candidates without a DB match.
        keep_numeric: keep numeric candidates without a DB match.
        max_candidates: final cap after validation.
    """

    keep_quoted: bool = True
    keep_numeric: bool = True
    max_candidates: int = 24


class CandidateValidator:
    """Validates candidates against one database's inverted index."""

    def __init__(self, index: InvertedIndex, config: ValidationConfig | None = None):
        self._index = index
        self._config = config or ValidationConfig()

    def validate(
        self,
        candidates: list[ValueCandidate],
        *,
        quoted_values: set[str] = frozenset(),
    ) -> list[ValueCandidate]:
        """Filter and locate candidates.

        Args:
            candidates: generator output.
            quoted_values: normalized texts that were extracted from quotes
                (exempt from DB validation, like numerics).
        """
        validated: list[ValueCandidate] = []
        for candidate in candidates:
            locations = tuple(sorted(
                self._index.lookup(candidate.value),
                key=lambda loc: (loc.table, loc.column),
            ))
            if locations:
                # Prefer the database's own spelling when the normalized
                # match differs in case ('france' -> 'France').
                value = candidate.value
                if isinstance(value, str):
                    originals = self._index.original_forms(value)
                    if originals and value not in originals:
                        value = sorted(originals)[0]
                validated.append(
                    ValueCandidate(value, candidate.source, locations)
                )
                continue
            if self._config.keep_numeric and _is_numeric(candidate):
                validated.append(candidate)
                continue
            is_quoted = candidate.normalized in quoted_values
            if self._config.keep_quoted and (is_quoted or _is_wildcard(candidate)):
                validated.append(candidate)
                continue
            # Unvalidated text candidate: dropped (Section IV-B3).
        deduped = dedupe_candidates(validated)
        located_first = sorted(
            deduped, key=lambda c: (not c.locations, ),
        )
        return located_first[: self._config.max_candidates]
