"""Handcrafted value-candidate heuristics (paper Section IV-B2).

Databases implement certain concepts in recurring ways; these heuristics
bridge the gap between the surface form in the question and the stored
form:

1. gender words -> single-character codes (``female`` -> ``'F'``),
2. boolean words -> 0/1 (``yes``/``true`` -> ``1``),
3. ordinals -> integers (``fourth`` -> ``4``),
4. month names -> date wildcards (``August`` -> ``%-08-%``).
"""

from __future__ import annotations

from repro.candidates.types import ValueCandidate
from repro.ner.heuristics import MONTHS, ordinal_to_int
from repro.ner.types import ExtractedValue, SpanKind

# Superlative phrasings that imply LIMIT 1 without a literal in the
# question.  Shared with the preprocessing hint tagger (which marks the
# same words as superlative question hints) — the set lives here, below
# preprocessing in the import layering, because candidate generation is
# the lower layer.
SUPERLATIVE_KEYWORDS = {
    "most", "least", "oldest", "youngest", "largest", "smallest", "highest",
    "lowest", "biggest", "best", "worst", "latest", "earliest", "longest",
    "shortest", "heaviest", "lightest", "top", "first", "last", "cheapest",
    "fastest", "slowest", "newest",
}

_GENDER_MAP = {
    "female": ["F", "Female", "female"],
    "females": ["F", "Female", "female"],
    "male": ["M", "Male", "male"],
    "males": ["M", "Male", "male"],
    "woman": ["F", "Female"],
    "women": ["F", "Female"],
    "man": ["M", "Male"],
    "men": ["M", "Male"],
    "girls": ["F"],
    "boys": ["M"],
}

_BOOLEAN_MAP = {
    "yes": [1, "Yes", "T", "true"],
    "no": [0, "No", "F", "false"],
    "true": [1, "T", "true", "Yes"],
    "false": [0, "F", "false", "No"],
}


def gender_candidates(word: str) -> list[ValueCandidate]:
    """Candidates for gender words ('female' -> 'F', 'Female', ...)."""
    variants = _GENDER_MAP.get(word.lower(), [])
    return [ValueCandidate(v, "heuristic") for v in variants]


def boolean_candidates(word: str) -> list[ValueCandidate]:
    """Candidates for boolean-ish words ('yes' -> 1, 'Yes', 'T', ...)."""
    variants = _BOOLEAN_MAP.get(word.lower(), [])
    return [ValueCandidate(v, "heuristic") for v in variants]


def ordinal_candidates(span: ExtractedValue) -> list[ValueCandidate]:
    """'fourth-grade' -> integer 4 (Section IV-B2, heuristic 3)."""
    number = ordinal_to_int(span.text)
    if number is None:
        return []
    return [ValueCandidate(number, "heuristic")]


def month_candidates(span: ExtractedValue) -> list[ValueCandidate]:
    """Month names -> date wildcards ('August' -> '%-08-%', '8/%')."""
    month = MONTHS.get(span.text.lower())
    if month is None:
        return []
    return [
        ValueCandidate(f"%-{month:02d}-%", "heuristic"),
        ValueCandidate(f"{month}/%", "heuristic"),
    ]


def question_word_candidates(question_words: list[str]) -> list[ValueCandidate]:
    """Run word-level heuristics (gender, boolean, superlative) over the
    question words.

    These concepts are rarely capitalized or quoted, so NER misses them;
    the paper's heuristics fire on the bare word.  Superlative phrasings
    ("the oldest student") imply ``LIMIT 1`` without any literal in the
    question, so a candidate ``1`` is proposed for them.
    """
    candidates: list[ValueCandidate] = []
    for word in question_words:
        lowered = word.lower()
        candidates.extend(gender_candidates(lowered))
        candidates.extend(boolean_candidates(lowered))
        if lowered in SUPERLATIVE_KEYWORDS:
            candidates.append(ValueCandidate(1, "heuristic"))
    return candidates


def span_candidates(span: ExtractedValue) -> list[ValueCandidate]:
    """Run span-level heuristics (ordinal, month) on one extracted span."""
    candidates: list[ValueCandidate] = []
    if span.kind is SpanKind.ORDINAL:
        candidates.extend(ordinal_candidates(span))
    if span.kind is SpanKind.MONTH:
        candidates.extend(month_candidates(span))
    return candidates
