"""Value candidate types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.index.inverted import ValueLocation


@dataclass(frozen=True)
class ValueCandidate:
    """One candidate value for the decoder's value pointer network.

    Attributes:
        value: the candidate payload as it would appear in SQL (string,
            int or float; formatting — quotes, wildcards — happens in
            post-processing based on the chosen column type).
        source: provenance, for analysis: ``question`` (extracted as-is),
            ``similarity``, ``heuristic``, ``ngram``, or ``gold``
            (ValueNet light's oracle).
        locations: the (table, column) locations where the candidate was
            found during validation; empty for unvalidated candidates
            (numbers, quoted strings).
    """

    value: object
    source: str
    locations: tuple[ValueLocation, ...] = field(default=())

    @property
    def normalized(self) -> str:
        value = self.value
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return str(value).strip().lower()

    def with_locations(self, locations: tuple[ValueLocation, ...]) -> "ValueCandidate":
        return ValueCandidate(self.value, self.source, locations)

    def describe(self) -> str:
        """Readable one-liner for logs."""
        where = ", ".join(str(loc) for loc in self.locations) or "unvalidated"
        return f"{self.value!r} [{self.source}; {where}]"


def dedupe_candidates(candidates: list[ValueCandidate]) -> list[ValueCandidate]:
    """Keep the first candidate per normalized value, merging locations."""
    merged: dict[str, ValueCandidate] = {}
    order: list[str] = []
    for candidate in candidates:
        key = candidate.normalized
        existing = merged.get(key)
        if existing is None:
            merged[key] = candidate
            order.append(key)
        elif candidate.locations:
            combined = tuple(dict.fromkeys(existing.locations + candidate.locations))
            merged[key] = existing.with_locations(combined)
    return [merged[key] for key in order]
