"""Value candidate generation and validation."""

from repro.candidates.generation import CandidateGenerator, GenerationConfig
from repro.candidates.heuristics import (
    boolean_candidates,
    gender_candidates,
    month_candidates,
    ordinal_candidates,
    question_word_candidates,
    span_candidates,
)
from repro.candidates.types import ValueCandidate, dedupe_candidates
from repro.candidates.validation import CandidateValidator, ValidationConfig

__all__ = [
    "CandidateGenerator",
    "CandidateValidator",
    "GenerationConfig",
    "ValidationConfig",
    "ValueCandidate",
    "boolean_candidates",
    "dedupe_candidates",
    "gender_candidates",
    "month_candidates",
    "ordinal_candidates",
    "question_word_candidates",
    "span_candidates",
]
