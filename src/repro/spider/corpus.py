"""Corpus container: examples, databases, splits, (de)serialization.

An :class:`Example` pairs one NL question with its gold SQL (executable
string *and* resolved AST), the gold SemQL 2.0 tree, the gold value list
and the difficulty annotations.  A :class:`SpiderCorpus` holds the train
and dev splits together with the materialized domain databases; splits use
**disjoint databases**, matching Spider's transfer-learning setup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.db.database import Database
from repro.errors import DatasetError
from repro.evaluation.difficulty import Hardness, ValueDifficulty
from repro.schema.model import Schema
from repro.schema.serialization import schema_from_dict, schema_to_dict
from repro.semql.tree import SemQLNode
from repro.spider.domains import DomainInstance, build_domain
from repro.sql.ast import Query


@dataclass
class Example:
    """One question/SQL pair with full gold annotations."""

    question: str
    db_id: str
    gold_sql: str
    gold_query: Query
    gold_semql: SemQLNode
    values: list[object]
    value_difficulties: list[ValueDifficulty]
    hardness: Hardness
    pattern: str = ""

    @property
    def has_values(self) -> bool:
        return bool(self.values)

    @property
    def value_difficulty(self) -> ValueDifficulty | None:
        from repro.evaluation.difficulty import combine_value_difficulty

        return combine_value_difficulty(self.value_difficulties)

    def to_dict(self) -> dict:
        return {
            "question": self.question,
            "db_id": self.db_id,
            "query": self.gold_sql,
            "values": self.values,
            "value_difficulties": [d.value for d in self.value_difficulties],
            "hardness": self.hardness.value,
            "pattern": self.pattern,
        }


@dataclass
class SpiderCorpus:
    """Train/dev examples plus the domain instances backing them."""

    train: list[Example]
    dev: list[Example]
    domains: dict[str, DomainInstance]
    train_domains: tuple[str, ...]
    dev_domains: tuple[str, ...]
    _databases: dict[str, Database] = field(default_factory=dict, repr=False)

    def schema(self, db_id: str) -> Schema:
        domain = self.domains.get(db_id)
        if domain is None:
            raise DatasetError(f"corpus has no database {db_id!r}")
        return domain.schema

    def database(self, db_id: str) -> Database:
        """The (cached, in-memory) SQLite database for ``db_id``."""
        if db_id not in self._databases:
            domain = self.domains.get(db_id)
            if domain is None:
                raise DatasetError(f"corpus has no database {db_id!r}")
            self._databases[db_id] = domain.build_database()
        return self._databases[db_id]

    def close(self) -> None:
        for database in self._databases.values():
            database.close()
        self._databases.clear()

    # -------------------------------------------------------------- stats

    @property
    def num_train(self) -> int:
        return len(self.train)

    @property
    def num_dev(self) -> int:
        return len(self.dev)

    def examples_with_values(self, split: str = "train") -> list[Example]:
        examples = self.train if split == "train" else self.dev
        return [e for e in examples if e.has_values]

    # ------------------------------------------------------ serialization

    def save(self, directory: str | Path) -> None:
        """Write the corpus in Spider-like layout: ``tables.json``,
        ``train.json`` and ``dev.json`` (databases are re-materialized
        deterministically from the domain specs on load)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        schemas = [self.domains[name].schema for name in sorted(self.domains)]
        (directory / "tables.json").write_text(
            json.dumps([schema_to_dict(s) for s in schemas], indent=1)
        )
        for split_name, examples in (("train", self.train), ("dev", self.dev)):
            (directory / f"{split_name}.json").write_text(
                json.dumps([e.to_dict() for e in examples], indent=1)
            )
        (directory / "split.json").write_text(json.dumps({
            "train_domains": list(self.train_domains),
            "dev_domains": list(self.dev_domains),
        }))


def load_examples(
    path: str | Path, schemas: dict[str, Schema]
) -> list[Example]:
    """Load a ``train.json``/``dev.json`` file back into examples.

    Gold SQL strings are re-parsed and re-lowered to SemQL, so the file is
    the single source of truth.
    """
    from repro.evaluation.difficulty import classify_hardness
    from repro.semql.from_sql import query_to_semql
    from repro.sql.parser import parse_sql

    records = json.loads(Path(path).read_text())
    examples: list[Example] = []
    for record in records:
        schema = schemas.get(record["db_id"])
        if schema is None:
            raise DatasetError(f"unknown db_id {record['db_id']!r} in {path}")
        query = parse_sql(record["query"], schema)
        examples.append(
            Example(
                question=record["question"],
                db_id=record["db_id"],
                gold_sql=record["query"],
                gold_query=query,
                gold_semql=query_to_semql(query, schema),
                values=record.get("values", []),
                value_difficulties=[
                    ValueDifficulty(v) for v in record.get("value_difficulties", [])
                ],
                hardness=Hardness(record.get("hardness", classify_hardness(query).value)),
                pattern=record.get("pattern", ""),
            )
        )
    return examples


def load_corpus(directory: str | Path) -> SpiderCorpus:
    """Load a corpus previously written by :meth:`SpiderCorpus.save`."""
    directory = Path(directory)
    schema_records = json.loads((directory / "tables.json").read_text())
    schemas = {r["db_id"]: schema_from_dict(r) for r in schema_records}
    split = json.loads((directory / "split.json").read_text())
    domains = {name: build_domain(name) for name in schemas}
    return SpiderCorpus(
        train=load_examples(directory / "train.json", schemas),
        dev=load_examples(directory / "dev.json", schemas),
        domains=domains,
        train_domains=tuple(split["train_domains"]),
        dev_domains=tuple(split["dev_domains"]),
    )
