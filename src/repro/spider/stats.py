"""Corpus statistics (paper Section V-A, Fig. 9).

The paper reports the value distribution over the train split: how many
samples carry 0/1/2/3/4 values, how many samples contain values at all,
and the total number of values.  These functions compute the same numbers
over our synthetic corpus so the Fig. 9 bench can print the comparison.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.evaluation.difficulty import Hardness, ValueDifficulty
from repro.spider.corpus import Example

# Fig. 9 of the paper (train split of Spider, 7,000 samples).
PAPER_VALUE_DISTRIBUTION = {0: 3469, 1: 2494, 2: 945, 3: 62, 4: 30}
PAPER_SAMPLES_WITH_VALUES = 3531
PAPER_TOTAL_VALUES = 4690


@dataclass(frozen=True)
class ValueDistribution:
    """Per-sample value-count histogram plus the headline counts."""

    counts: dict[int, int]
    total_samples: int
    samples_with_values: int
    total_values: int

    def fraction(self, n: int) -> float:
        return self.counts.get(n, 0) / max(self.total_samples, 1)


def value_distribution(examples: list[Example]) -> ValueDistribution:
    """Histogram of values-per-sample over ``examples`` (Fig. 9)."""
    counts: Counter[int] = Counter(len(e.values) for e in examples)
    return ValueDistribution(
        counts=dict(sorted(counts.items())),
        total_samples=len(examples),
        samples_with_values=sum(1 for e in examples if e.values),
        total_values=sum(len(e.values) for e in examples),
    )


def hardness_distribution(examples: list[Example]) -> dict[Hardness, int]:
    """Spider-hardness histogram."""
    counts: Counter[Hardness] = Counter(e.hardness for e in examples)
    return {h: counts.get(h, 0) for h in Hardness}


def value_difficulty_distribution(
    examples: list[Example],
) -> dict[ValueDifficulty, int]:
    """Histogram of the paper's value-difficulty classes (per value)."""
    counts: Counter[ValueDifficulty] = Counter()
    for example in examples:
        counts.update(example.value_difficulties)
    return {d: counts.get(d, 0) for d in ValueDifficulty}
