"""Question/SQL pattern generators.

Each pattern produces an NL question together with the gold SQL *AST* (the
string rendering and SemQL lowering happen in the corpus generator), the
gold value list and per-value difficulty tags.  Patterns span the four
Spider hardness classes and the paper's four *value* difficulty classes —
the mix is weighted so the per-sample value distribution approximates the
paper's Fig. 9 (about half the samples carry no value, most of the rest
one or two).

The phrasing of every pattern is drawn from several alternates, and entity
nouns are occasionally replaced with synonyms, so the model cannot
memorize templates verbatim and schema linking stays non-trivial on unseen
databases.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.evaluation.difficulty import ValueDifficulty
from repro.spider.domains import ColumnSpec, DomainInstance, TableSpec
from repro.sql.ast import (
    AggregateFunction,
    BooleanExpr,
    ColumnRef,
    Condition,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
    SetOperator,
)

EASY = ValueDifficulty.EASY
MEDIUM = ValueDifficulty.MEDIUM
HARD = ValueDifficulty.HARD
EXTRA = ValueDifficulty.EXTRA_HARD


@dataclass
class GeneratedExample:
    """One generated (question, gold AST) pair with value metadata."""

    question: str
    query: Query
    values: list[object] = field(default_factory=list)
    value_difficulties: list[ValueDifficulty] = field(default_factory=list)
    pattern: str = ""


class TemplateContext:
    """Sampling helpers over one materialized domain."""

    def __init__(self, instance: DomainInstance, rng: random.Random, *, noise: float = 0.25):
        self.instance = instance
        self.rng = rng
        self.noise = noise

    # ----------------------------------------------------------- schema

    def entity_tables(self) -> list[TableSpec]:
        return [t for t in self.instance.spec.tables if not t.is_bridge]

    def columns_with_role(self, table: TableSpec, role: str) -> list[ColumnSpec]:
        return [c for c in table.columns if c.role == role]

    def name_column(self, table: TableSpec) -> ColumnSpec | None:
        names = self.columns_with_role(table, "name")
        return names[0] if names else None

    def pick(self, items: list):
        return self.rng.choice(items) if items else None

    def noun(self, table: TableSpec) -> str:
        """Plural entity noun, occasionally replaced by a synonym."""
        options = [table.plural]
        if table.synonyms and self.rng.random() < self.noise:
            options = list(table.synonyms)
        return self.rng.choice(options)

    # ----------------------------------------------------------- values

    def sample_category(self, table: TableSpec, column: ColumnSpec) -> tuple[object, str, ValueDifficulty]:
        """Sample a stored category value; choose its question surface."""
        values = self.instance.column_values(table.name, column.name)
        value = self.rng.choice(values)
        surfaces = column.surfaces.get(str(value))
        if column.role == "code":
            if surfaces and self.rng.random() < 0.8:
                return value, self.rng.choice(list(surfaces)), HARD
            return value, f"'{value}'", EASY  # quoted literal code
        if column.role == "gender":
            assert surfaces is not None
            return value, self.rng.choice(list(surfaces)), MEDIUM
        if surfaces and self.rng.random() < 0.45:
            return value, self.rng.choice(list(surfaces)), MEDIUM
        text = str(value)
        if text.isalpha() and text != text.lower() and self.rng.random() < 0.3:
            # Case drift ("Biology" asked as "biology"): still extractable,
            # but the stored form differs -> the paper's *medium* class.
            return value, text.lower(), MEDIUM
        return value, text, EASY

    def sample_numeric(self, table: TableSpec, column: ColumnSpec) -> object:
        """A threshold near the middle of the stored distribution."""
        values = sorted(self.instance.column_values(table.name, column.name))
        if not values:
            return int(column.low)
        lo = values[max(0, len(values) // 4)]
        hi = values[min(len(values) - 1, 3 * len(values) // 4)]
        if isinstance(lo, float) or isinstance(hi, float):
            return round(self.rng.uniform(float(lo), float(hi)), 1)
        if int(hi) <= int(lo):
            return int(lo)
        return self.rng.randint(int(lo), int(hi))

    def sample_name(self, table: TableSpec, column: ColumnSpec) -> str:
        values = self.instance.column_values(table.name, column.name)
        return str(self.rng.choice(values))

    # --------------------------------------------------------- phrasing

    def numeric_phrase(self, column: ColumnSpec, op: Operator, value: object) -> str:
        nl = column.nl
        if nl == "age":
            if op is Operator.GT:
                return self.rng.choice([f"older than {value}", f"whose age is greater than {value}"])
            if op is Operator.LT:
                return self.rng.choice([f"younger than {value}", f"whose age is below {value}"])
        templates = {
            Operator.GT: [f"with {nl} greater than {value}", f"whose {nl} is above {value}", f"with a {nl} over {value}"],
            Operator.LT: [f"with {nl} less than {value}", f"whose {nl} is below {value}", f"with a {nl} under {value}"],
            Operator.GE: [f"with {nl} of at least {value}", f"whose {nl} is {value} or more"],
            Operator.LE: [f"with {nl} of at most {value}", f"whose {nl} is {value} or less"],
            Operator.EQ: [f"with {nl} equal to {value}", f"whose {nl} is {value}"],
        }
        return self.rng.choice(templates[op])

    def category_phrase(self, column: ColumnSpec, surface: str) -> str:
        nl = column.nl
        return self.rng.choice([
            f"whose {nl} is {surface}",
            f"with {nl} {surface}",
            f"with the {nl} {surface}",
        ])


def _col(table: TableSpec, column: ColumnSpec) -> ColumnRef:
    return ColumnRef(table.name, column.name)


def _name_item(table: TableSpec, ctx: TemplateContext) -> tuple[SelectItem, str]:
    """Projection for a table: its name column, or ``*`` when anonymous."""
    name_column = ctx.name_column(table)
    if name_column is not None:
        return SelectItem(_col(table, name_column)), name_column.nl
    return SelectItem(ColumnRef(None, "*")), "details"


def _single(query: SelectQuery) -> Query:
    return Query(body=query)


def _capitalize(text: str) -> str:
    return text[0].upper() + text[1:] if text else text


# ---------------------------------------------------------------------------
# Condition builders shared by several patterns


def _category_condition(
    ctx: TemplateContext, table: TableSpec
) -> tuple[Condition, str, object, ValueDifficulty] | None:
    """A category/gender/code/bool equality condition with its phrase."""
    choices: list[ColumnSpec] = (
        ctx.columns_with_role(table, "category")
        + ctx.columns_with_role(table, "gender")
        # code/bool columns are rarer across the schema; boost their draw
        # weight so the hard/extra-hard value mechanisms stay represented.
        + 4 * ctx.columns_with_role(table, "code")
        + 4 * ctx.columns_with_role(table, "bool")
    )
    column = ctx.pick(choices)
    if column is None:
        return None
    if column.role == "bool":
        condition = Condition(_col(table, column), Operator.EQ, Literal("T"))
        return condition, f"__ADJ__{column.concept}", "T", EXTRA
    value, surface, difficulty = ctx.sample_category(table, column)
    condition = Condition(_col(table, column), Operator.EQ, Literal(value))
    if column.role == "gender" or (difficulty is MEDIUM and surface.islower()):
        # adjective-style phrasing: "female employees", "French students"
        if ctx.rng.random() < 0.6:
            return condition, f"__ADJ__{surface}", value, difficulty
    if difficulty is HARD and ctx.rng.random() < 0.5:
        return condition, f"from {surface}", value, difficulty
    return condition, ctx.category_phrase(column, surface), value, difficulty


def _numeric_condition(
    ctx: TemplateContext, table: TableSpec
) -> tuple[Condition, str, object] | None:
    numerics = ctx.columns_with_role(table, "numeric") + ctx.columns_with_role(table, "year")
    column = ctx.pick(numerics)
    if column is None:
        return None
    if column.role == "year":
        values = ctx.instance.column_values(table.name, column.name)
        value: object = ctx.rng.choice(values)
        phrase = ctx.rng.choice([f"from {value}", f"from the year {value}", f"of {value}"])
        return Condition(_col(table, column), Operator.EQ, Literal(value)), phrase, value
    op = ctx.rng.choice([Operator.GT, Operator.LT, Operator.GE, Operator.LE])
    value = ctx.sample_numeric(table, column)
    phrase = ctx.numeric_phrase(column, op, value)
    return Condition(_col(table, column), op, Literal(value)), phrase, value


def _attach_adjective(noun_phrase: str, condition_phrase: str) -> tuple[str, str]:
    """Adjective-style conditions prefix the noun instead of trailing it."""
    if condition_phrase.startswith("__ADJ__"):
        return f"{condition_phrase.removeprefix('__ADJ__')} {noun_phrase}", ""
    return noun_phrase, condition_phrase


def _join_phrase(noun: str, trailing: str) -> str:
    return f"{noun} {trailing}".strip()


# ---------------------------------------------------------------------------
# Patterns.  Each returns a GeneratedExample or None when inapplicable.


def pattern_count_all(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"How many {noun} are there?",
        f"Count the number of {noun}.",
        f"What is the total number of {noun}?",
    ])
    query = SelectQuery(
        select=[SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT)],
        tables=[table.name],
    )
    return GeneratedExample(question, _single(query), pattern="count_all")


def pattern_list_all(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of all {noun}.",
        f"Show the {item_nl} of every {table.singular}.",
        f"What are the {item_nl}s of all {noun}?",
    ])
    query = SelectQuery(select=[item], tables=[table.name])
    return GeneratedExample(question, _single(query), pattern="list_all")


def pattern_select_column(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    columns = (
        ctx.columns_with_role(table, "numeric")
        + ctx.columns_with_role(table, "category")
        + ctx.columns_with_role(table, "year")
        + ctx.columns_with_role(table, "date")
    )
    column = ctx.pick(columns)
    if column is None:
        return None
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"Show the {column.nl} of all {noun}.",
        f"What is the {column.nl} of each {table.singular}?",
        f"List the {column.nl} for every {table.singular}.",
    ])
    query = SelectQuery(select=[SelectItem(_col(table, column))], tables=[table.name])
    return GeneratedExample(question, _single(query), pattern="select_column")


def pattern_filter_category(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    built = _category_condition(ctx, table)
    if built is None:
        return None
    condition, phrase, value, difficulty = built
    item, item_nl = _name_item(table, ctx)
    noun, trailing = _attach_adjective(ctx.noun(table), phrase)
    question = ctx.rng.choice([
        f"List the {item_nl} of {_join_phrase(noun, trailing)}.",
        f"Which {_join_phrase(noun, trailing)} are there? Give me their {item_nl}.",
        f"Find the {item_nl} of all {_join_phrase(noun, trailing)}.",
    ])
    query = SelectQuery(select=[item], tables=[table.name], where=condition)
    return GeneratedExample(
        question, _single(query), [value], [difficulty], pattern="filter_category"
    )


def pattern_filter_numeric(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    built = _numeric_condition(ctx, table)
    if built is None:
        return None
    condition, phrase, value = built
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of {noun} {phrase}.",
        f"What are the {item_nl}s of {noun} {phrase}?",
        f"Show all {noun} {phrase}.",
    ])
    query = SelectQuery(select=[item], tables=[table.name], where=condition)
    return GeneratedExample(
        question, _single(query), [value], [EASY], pattern="filter_numeric"
    )


def pattern_count_filtered(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    built = _category_condition(ctx, table)
    if built is None:
        return None
    condition, phrase, value, difficulty = built
    noun, trailing = _attach_adjective(ctx.noun(table), phrase)
    question = ctx.rng.choice([
        f"How many {_join_phrase(noun, trailing)} are there?",
        f"Count the {_join_phrase(noun, trailing)}.",
        f"What is the number of {_join_phrase(noun, trailing)}?",
    ])
    query = SelectQuery(
        select=[SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT)],
        tables=[table.name],
        where=condition,
    )
    return GeneratedExample(
        question, _single(query), [value], [difficulty], pattern="count_filtered"
    )


def pattern_aggregate(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    agg, agg_nl = ctx.rng.choice([
        (AggregateFunction.AVG, "average"),
        (AggregateFunction.MAX, "maximum"),
        (AggregateFunction.MIN, "minimum"),
        (AggregateFunction.SUM, "total"),
    ])
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"What is the {agg_nl} {column.nl} of all {noun}?",
        f"Find the {agg_nl} {column.nl} across all {noun}.",
        f"Give me the {agg_nl} {column.nl} of the {noun}.",
    ])
    query = SelectQuery(select=[SelectItem(_col(table, column), agg)], tables=[table.name])
    return GeneratedExample(question, _single(query), pattern="aggregate")


def pattern_distinct(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "category"))
    if column is None:
        return None
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the distinct {column.nl}s of the {noun}.",
        f"What are the different {column.nl}s of {noun}?",
        f"Show each distinct {column.nl} among the {noun}.",
    ])
    query = SelectQuery(
        select=[SelectItem(_col(table, column))], tables=[table.name], distinct=True
    )
    return GeneratedExample(question, _single(query), pattern="distinct")


def pattern_two_columns(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    name_column = ctx.name_column(table)
    other = ctx.pick(
        ctx.columns_with_role(table, "numeric") + ctx.columns_with_role(table, "category")
    )
    if name_column is None or other is None:
        return None
    built = _numeric_condition(ctx, table)
    if built is None:
        return None
    condition, phrase, value = built
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"Show the {name_column.nl} and {other.nl} of {noun} {phrase}.",
        f"What are the {name_column.nl} and {other.nl} of {noun} {phrase}?",
    ])
    query = SelectQuery(
        select=[SelectItem(_col(table, name_column)), SelectItem(_col(table, other))],
        tables=[table.name],
        where=condition,
    )
    return GeneratedExample(
        question, _single(query), [value], [EASY], pattern="two_columns"
    )


def pattern_group_count(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "category"))
    if column is None:
        return None
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"For each {column.nl}, how many {noun} are there?",
        f"Count the number of {noun} for each {column.nl}.",
        f"How many {noun} are there per {column.nl}?",
    ])
    query = SelectQuery(
        select=[
            SelectItem(_col(table, column)),
            SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT),
        ],
        tables=[table.name],
        group_by=[_col(table, column)],
    )
    return GeneratedExample(question, _single(query), pattern="group_count")


def _fk_pairs(ctx: TemplateContext) -> list[tuple[TableSpec, TableSpec, ColumnSpec]]:
    """(child, parent, fk-column) triples between *entity* tables."""
    pairs = []
    entity_names = {t.name for t in ctx.entity_tables()}
    for table in ctx.instance.spec.tables:
        if table.is_bridge:
            continue
        for column in table.columns:
            if column.fk is not None and column.fk[0] in entity_names:
                parent = ctx.instance.spec.table(column.fk[0])
                pairs.append((table, parent, column))
    return pairs


def _bridge_pairs(ctx: TemplateContext) -> list[tuple[TableSpec, TableSpec, TableSpec]]:
    """(left parent, right parent, bridge) triples."""
    triples = []
    for table in ctx.instance.spec.tables:
        if not table.is_bridge:
            continue
        fks = [c for c in table.columns if c.fk is not None]
        if len(fks) >= 2:
            left = ctx.instance.spec.table(fks[0].fk[0])   # type: ignore[index]
            right = ctx.instance.spec.table(fks[1].fk[0])  # type: ignore[index]
            triples.append((left, right, table))
    return triples


def pattern_join_filter(ctx: TemplateContext) -> GeneratedExample | None:
    pairs = _fk_pairs(ctx)
    pair = ctx.pick(pairs)
    if pair is None:
        return None
    child, parent, _fk_col = pair
    item, item_nl = _name_item(child, ctx)
    built = _category_condition(ctx, parent)
    if built is None:
        built_numeric = _numeric_condition(ctx, parent)
        if built_numeric is None:
            return None
        condition, phrase, value = built_numeric
        difficulty = EASY
    else:
        condition, phrase, value, difficulty = built
    parent_noun, trailing = _attach_adjective(parent.plural, phrase)
    child_noun = ctx.noun(child)
    question = ctx.rng.choice([
        f"List the {item_nl} of {child_noun} of {_join_phrase(parent_noun, trailing)}.",
        f"Show the {item_nl} of every {child.singular} whose {parent.singular} is among the {_join_phrase(parent_noun, trailing)}.",
        f"What are the {item_nl}s of {child_noun} belonging to {_join_phrase(parent_noun, trailing)}?",
    ])
    query = SelectQuery(
        select=[item],
        tables=[child.name, parent.name],
        where=condition,
    )
    return GeneratedExample(
        question, _single(query), [value], [difficulty], pattern="join_filter"
    )


def pattern_bridge_join(ctx: TemplateContext) -> GeneratedExample | None:
    triples = _bridge_pairs(ctx)
    triple = ctx.pick(triples)
    if triple is None:
        return None
    left, right, _bridge = triple
    item, item_nl = _name_item(left, ctx)
    built = _category_condition(ctx, right) or None
    if built is not None:
        condition, phrase, value, difficulty = built
        values, difficulties = [value], [difficulty]
    else:
        numeric = _numeric_condition(ctx, right)
        if numeric is None:
            return None
        condition, phrase, value = numeric
        values, difficulties = [value], [EASY]
    right_noun, trailing = _attach_adjective(right.plural, phrase)
    question = ctx.rng.choice([
        f"List the {item_nl} of {ctx.noun(left)} that have {_join_phrase(right_noun, trailing)}.",
        f"Which {ctx.noun(left)} have {_join_phrase(right_noun, trailing)}? Show their {item_nl}.",
    ])
    query = SelectQuery(
        select=[item],
        tables=[left.name, right.name],
        where=condition,
    )
    return GeneratedExample(
        question, _single(query), values, difficulties, pattern="bridge_join"
    )


def pattern_count_join(ctx: TemplateContext) -> GeneratedExample | None:
    triples = _bridge_pairs(ctx)
    triple = ctx.pick(triples)
    if triple is None:
        return None
    left, right, bridge = triple
    built = _category_condition(ctx, left)
    if built is None:
        return None
    condition, phrase, value, difficulty = built
    left_noun, trailing = _attach_adjective(left.plural, phrase)
    question = ctx.rng.choice([
        f"How many {ctx.noun(right)} are owned by {_join_phrase(left_noun, trailing)}?",
        f"Count the {ctx.noun(right)} of {_join_phrase(left_noun, trailing)}.",
    ])
    query = SelectQuery(
        select=[SelectItem(ColumnRef(bridge.name, "*"), AggregateFunction.COUNT)],
        tables=[bridge.name, left.name],
        where=condition,
    )
    return GeneratedExample(
        question, _single(query), [value], [difficulty], pattern="count_join"
    )


def pattern_between(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    low = ctx.sample_numeric(table, column)
    high = ctx.sample_numeric(table, column)
    if isinstance(low, float) or isinstance(high, float):
        low, high = min(float(low), float(high)), max(float(low), float(high)) + 1.0
    else:
        low, high = min(low, high), max(low, high) + 1
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of {noun} with {column.nl} between {low} and {high}.",
        f"Which {noun} have a {column.nl} between {low} and {high}?",
    ])
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=Condition(
            _col(table, column), Operator.BETWEEN, (Literal(low), Literal(high))
        ),
    )
    return GeneratedExample(
        question, _single(query), [low, high], [EASY, EASY], pattern="between"
    )


def pattern_two_conditions(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    category = _category_condition(ctx, table)
    numeric = _numeric_condition(ctx, table)
    if category is None or numeric is None:
        return None
    cat_condition, cat_phrase, cat_value, cat_difficulty = category
    num_condition, num_phrase, num_value = numeric
    item, item_nl = _name_item(table, ctx)
    noun, trailing = _attach_adjective(ctx.noun(table), cat_phrase)
    question = ctx.rng.choice([
        f"List the {item_nl} of {_join_phrase(noun, trailing)} {num_phrase}.",
        f"Which {_join_phrase(noun, trailing)} are {num_phrase}? Show their {item_nl}.",
        f"Find the {item_nl} of {_join_phrase(noun, trailing)} that are also {num_phrase}.",
    ])
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=BooleanExpr("and", (cat_condition, num_condition)),
    )
    return GeneratedExample(
        question,
        _single(query),
        [cat_value, num_value],
        [cat_difficulty, EASY],
        pattern="two_conditions",
    )


def pattern_superlative(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    n = ctx.rng.randint(1, 5)
    descending = ctx.rng.random() < 0.6
    direction_nl = "highest" if descending else "lowest"
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    if n == 1:
        question = ctx.rng.choice([
            f"Which {table.singular} has the {direction_nl} {column.nl}? Show its {item_nl}.",
            f"What is the {item_nl} of the {table.singular} with the {direction_nl} {column.nl}?",
        ])
    else:
        question = ctx.rng.choice([
            f"List the {item_nl} of the {n} {noun} with the {direction_nl} {column.nl}.",
            f"What are the {item_nl}s of the top {n} {noun} by {column.nl}?"
            if descending else
            f"Show the {item_nl} of the {n} {noun} with the smallest {column.nl}.",
        ])
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        order_by=OrderBy(
            items=(SelectItem(_col(table, column)),),
            direction=OrderDirection.DESC if descending else OrderDirection.ASC,
        ),
        limit=n,
    )
    return GeneratedExample(
        question, _single(query), [n], [EASY], pattern="superlative"
    )


def pattern_order_by(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    item, item_nl = _name_item(table, ctx)
    descending = ctx.rng.random() < 0.5
    order_nl = "descending" if descending else "ascending"
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of all {noun} sorted by {column.nl} in {order_nl} order.",
        f"Show the {item_nl} of every {table.singular} ordered by {column.nl} {order_nl}.",
    ])
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        order_by=OrderBy(
            items=(SelectItem(_col(table, column)),),
            direction=OrderDirection.DESC if descending else OrderDirection.ASC,
        ),
    )
    return GeneratedExample(question, _single(query), pattern="order_by")


def pattern_having(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "category"))
    if column is None:
        return None
    n = ctx.rng.randint(1, 4)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"Which {column.nl}s have more than {n} {noun}?",
        f"List the {column.nl}s with more than {n} {noun}.",
    ])
    query = SelectQuery(
        select=[SelectItem(_col(table, column))],
        tables=[table.name],
        group_by=[_col(table, column)],
        having=Condition(
            ColumnRef(None, "*"), Operator.GT, Literal(n), AggregateFunction.COUNT
        ),
    )
    return GeneratedExample(question, _single(query), [n], [EASY], pattern="having")


def pattern_nested_in(ctx: TemplateContext) -> GeneratedExample | None:
    pair = ctx.pick(_fk_pairs(ctx))
    if pair is None:
        triples = _bridge_pairs(ctx)
        if not triples:
            return None
        left, _right, bridge = ctx.rng.choice(triples)
        fk_col = next(c for c in bridge.columns if c.fk is not None and c.fk[0] == left.name)
        child, parent = bridge, left
    else:
        child, parent, fk_col = pair
    assert fk_col.fk is not None
    item, item_nl = _name_item(parent, ctx)
    negated = ctx.rng.random() < 0.4
    child_noun = ctx.noun(child) if not child.is_bridge else child.plural
    if child.is_bridge:
        # phrase via the other side of the bridge when possible
        other_fks = [c for c in child.columns if c.fk is not None and c.fk[0] != parent.name]
        if other_fks:
            other = ctx.instance.spec.table(other_fks[0].fk[0])  # type: ignore[index]
            child_noun = other.plural
    if negated:
        question = ctx.rng.choice([
            f"List the {item_nl} of {parent.plural} that do not have any {child_noun}.",
            f"Which {parent.plural} have no {child_noun}? Show their {item_nl}.",
        ])
        operator = Operator.NOT_IN
    else:
        question = ctx.rng.choice([
            f"List the {item_nl} of {parent.plural} that have at least one {child.singular if not child.is_bridge else child_noun.rstrip('s')}.",
            f"Which {parent.plural} have {child_noun}? Show their {item_nl}.",
        ])
        operator = Operator.IN
    pk_column = next(c for c in parent.columns if c.pk)
    subquery = Query(
        body=SelectQuery(
            select=[SelectItem(ColumnRef(child.name, fk_col.name))],
            tables=[child.name],
        )
    )
    query = SelectQuery(
        select=[item],
        tables=[parent.name],
        where=Condition(_col(parent, pk_column), operator, subquery),
    )
    return GeneratedExample(question, _single(query), pattern="nested_in")


def pattern_above_average(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of {noun} with a {column.nl} above the average.",
        f"Which {noun} have a {column.nl} higher than the average {column.nl}?",
    ])
    subquery = Query(
        body=SelectQuery(
            select=[SelectItem(_col(table, column), AggregateFunction.AVG)],
            tables=[table.name],
        )
    )
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=Condition(_col(table, column), Operator.GT, subquery),
    )
    return GeneratedExample(question, _single(query), pattern="above_average")


def pattern_compound(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    first = _category_condition(ctx, table)
    second = _numeric_condition(ctx, table)
    if first is None or second is None:
        return None
    cat_condition, cat_phrase, cat_value, cat_difficulty = first
    num_condition, num_phrase, num_value = second
    item, item_nl = _name_item(table, ctx)
    set_op, connective = ctx.rng.choice([
        (SetOperator.UNION, "or"),
        (SetOperator.INTERSECT, "and also"),
        (SetOperator.EXCEPT, "but not"),
    ])
    noun, trailing = _attach_adjective(ctx.noun(table), cat_phrase)
    question = (
        f"List the {item_nl} of {_join_phrase(noun, trailing)} {connective} "
        f"{table.plural} {num_phrase}."
    )
    left = SelectQuery(select=[item], tables=[table.name], where=cat_condition)
    right = SelectQuery(select=[item], tables=[table.name], where=num_condition)
    query = Query(body=left, set_operator=set_op, compound=Query(body=right))
    return GeneratedExample(
        _capitalize(question),
        query,
        [cat_value, num_value],
        [cat_difficulty, EASY],
        pattern="compound",
    )


def pattern_superlative_filter(ctx: TemplateContext) -> GeneratedExample | None:
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    built = _category_condition(ctx, table)
    if column is None or built is None:
        return None
    condition, phrase, value, difficulty = built
    n = ctx.rng.randint(1, 4)
    item, item_nl = _name_item(table, ctx)
    noun, trailing = _attach_adjective(ctx.noun(table), phrase)
    question = (
        f"Among {_join_phrase(noun, trailing)}, list the {item_nl} of the "
        f"{n} with the highest {column.nl}."
    )
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=condition,
        order_by=OrderBy(
            items=(SelectItem(_col(table, column)),), direction=OrderDirection.DESC
        ),
        limit=n,
    )
    return GeneratedExample(
        _capitalize(question),
        _single(query),
        [value, n],
        [difficulty, EASY],
        pattern="superlative_filter",
    )


def pattern_nested_max(ctx: TemplateContext) -> GeneratedExample | None:
    """Superlative phrased via a sub-query: WHERE col = (SELECT max(col))."""
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if column is None:
        return None
    use_max = ctx.rng.random() < 0.6
    agg = AggregateFunction.MAX if use_max else AggregateFunction.MIN
    direction_nl = "highest" if use_max else "lowest"
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"Find the {item_nl} of the {table.singular} whose {column.nl} equals the {direction_nl} {column.nl} of all {noun}.",
        f"Which {noun} have the {direction_nl} {column.nl}? List their {item_nl}.",
    ])
    subquery = Query(
        body=SelectQuery(
            select=[SelectItem(_col(table, column), agg)], tables=[table.name]
        )
    )
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=Condition(_col(table, column), Operator.EQ, subquery),
    )
    return GeneratedExample(question, _single(query), pattern="nested_max")


def pattern_nested_max_join(ctx: TemplateContext) -> GeneratedExample | None:
    """Join plus a superlative sub-query: extra-hard, no values."""
    pair = ctx.pick(_fk_pairs(ctx))
    if pair is None:
        return None
    child, parent, _fk_col = pair
    column = ctx.pick(ctx.columns_with_role(child, "numeric"))
    parent_item, parent_item_nl = _name_item(parent, ctx)
    if column is None:
        return None
    use_max = ctx.rng.random() < 0.6
    agg = AggregateFunction.MAX if use_max else AggregateFunction.MIN
    direction_nl = "highest" if use_max else "lowest"
    question = ctx.rng.choice([
        f"What is the {parent_item_nl} of the {parent.singular} of the {child.singular} with the {direction_nl} {column.nl}?",
        f"Show the {parent_item_nl} of the {parent.singular} whose {child.singular} has the {direction_nl} {column.nl}.",
    ])
    subquery = Query(
        body=SelectQuery(
            select=[SelectItem(_col(child, column), agg)], tables=[child.name]
        )
    )
    query = SelectQuery(
        select=[parent_item],
        tables=[parent.name, child.name],
        where=Condition(_col(child, column), Operator.EQ, subquery),
    )
    return GeneratedExample(question, _single(query), pattern="nested_max_join")


def pattern_or_conditions(ctx: TemplateContext) -> GeneratedExample | None:
    """Disjunction of two category conditions on the same table."""
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    column = ctx.pick(ctx.columns_with_role(table, "category"))
    if column is None:
        return None
    value_a, surface_a, diff_a = ctx.sample_category(table, column)
    value_b, surface_b, diff_b = ctx.sample_category(table, column)
    if str(value_a) == str(value_b):
        return None
    item, item_nl = _name_item(table, ctx)
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"List the {item_nl} of {noun} whose {column.nl} is {surface_a} or {surface_b}.",
        f"Which {noun} have {column.nl} {surface_a} or {column.nl} {surface_b}?",
    ])
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=BooleanExpr("or", (
            Condition(_col(table, column), Operator.EQ, Literal(value_a)),
            Condition(_col(table, column), Operator.EQ, Literal(value_b)),
        )),
    )
    return GeneratedExample(
        question, _single(query), [value_a, value_b], [diff_a, diff_b],
        pattern="or_conditions",
    )


def pattern_nested_in_filtered(ctx: TemplateContext) -> GeneratedExample | None:
    """Nested IN whose sub-query joins and filters: extra-hard sketch with
    a value ("students that have dogs")."""
    triples = _bridge_pairs(ctx)
    triple = ctx.pick(triples)
    if triple is None:
        return None
    left, right, bridge = triple
    built = _category_condition(ctx, right)
    if built is None:
        return None
    condition, phrase, value, difficulty = built
    left_fk = next(c for c in bridge.columns if c.fk is not None and c.fk[0] == left.name)
    item, item_nl = _name_item(left, ctx)
    right_noun, trailing = _attach_adjective(right.plural, phrase)
    question = ctx.rng.choice([
        f"List the {item_nl} of {ctx.noun(left)} that have {_join_phrase(right_noun, trailing)}.",
        f"Find the {item_nl} of every {left.singular} that has {_join_phrase(right_noun, trailing)}.",
    ])
    pk_column = next(c for c in left.columns if c.pk)
    subquery = Query(
        body=SelectQuery(
            select=[SelectItem(ColumnRef(bridge.name, left_fk.name))],
            tables=[bridge.name, right.name],
            where=condition,
        )
    )
    query = SelectQuery(
        select=[item],
        tables=[left.name],
        where=Condition(_col(left, pk_column), Operator.IN, subquery),
    )
    return GeneratedExample(
        question, _single(query), [value], [difficulty], pattern="nested_in_filtered"
    )


def pattern_join_group(ctx: TemplateContext) -> GeneratedExample | None:
    """Per-parent counts over a join: 'for each maker, how many cars'."""
    pair = ctx.pick(_fk_pairs(ctx))
    if pair is None:
        return None
    child, parent, _fk_col = pair
    name_column = ctx.name_column(parent)
    if name_column is None:
        return None
    question = ctx.rng.choice([
        f"For each {parent.singular}, how many {ctx.noun(child)} are there? Show the {parent.singular} {name_column.nl} and the count.",
        f"Count the {ctx.noun(child)} of each {parent.singular}.",
    ])
    query = SelectQuery(
        select=[
            SelectItem(_col(parent, name_column)),
            SelectItem(ColumnRef(child.name, "*"), AggregateFunction.COUNT),
        ],
        tables=[child.name, parent.name],
        group_by=[_col(parent, name_column)],
    )
    return GeneratedExample(question, _single(query), pattern="join_group")


def pattern_three_values(ctx: TemplateContext) -> GeneratedExample | None:
    """Category filter + numeric filter + superlative limit: three values."""
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    category = _category_condition(ctx, table)
    numeric = _numeric_condition(ctx, table)
    column = ctx.pick(ctx.columns_with_role(table, "numeric"))
    if category is None or numeric is None or column is None:
        return None
    cat_condition, cat_phrase, cat_value, cat_difficulty = category
    num_condition, num_phrase, num_value = numeric
    n = ctx.rng.randint(2, 5)
    item, item_nl = _name_item(table, ctx)
    noun, trailing = _attach_adjective(ctx.noun(table), cat_phrase)
    question = (
        f"Among {_join_phrase(noun, trailing)} {num_phrase}, show the {item_nl} "
        f"of the {n} with the highest {column.nl}."
    )
    query = SelectQuery(
        select=[item],
        tables=[table.name],
        where=BooleanExpr("and", (cat_condition, num_condition)),
        order_by=OrderBy(
            items=(SelectItem(_col(table, column)),), direction=OrderDirection.DESC
        ),
        limit=n,
    )
    return GeneratedExample(
        _capitalize(question),
        _single(query),
        [cat_value, num_value, n],
        [cat_difficulty, EASY, EASY],
        pattern="three_values",
    )


def pattern_name_lookup(ctx: TemplateContext) -> GeneratedExample | None:
    """Look up one entity by name and project a column (easy, 1 value)."""
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    name_column = ctx.name_column(table)
    other = ctx.pick(
        ctx.columns_with_role(table, "numeric")
        + ctx.columns_with_role(table, "category")
        + ctx.columns_with_role(table, "year")
    )
    if name_column is None or other is None:
        return None
    value = ctx.sample_name(table, name_column)
    question = ctx.rng.choice([
        f"What is the {other.nl} of the {table.singular} named {value}?",
        f"Show the {other.nl} of {value}.",
        f"Find the {other.nl} of the {table.singular} called {value}.",
    ])
    query = SelectQuery(
        select=[SelectItem(_col(table, other))],
        tables=[table.name],
        where=Condition(_col(table, name_column), Operator.EQ, Literal(value)),
    )
    return GeneratedExample(
        question, _single(query), [value], [EASY], pattern="name_lookup"
    )


def pattern_like(ctx: TemplateContext) -> GeneratedExample | None:
    """LIKE on a name column with a quoted fragment (quoted heuristic)."""
    table = ctx.pick(ctx.entity_tables())
    if table is None:
        return None
    name_column = ctx.name_column(table)
    if name_column is None:
        return None
    full_value = ctx.sample_name(table, name_column)
    words = full_value.split()
    fragment = ctx.rng.choice(words)[: ctx.rng.randint(2, 4)]
    noun = ctx.noun(table)
    question = ctx.rng.choice([
        f"Which {noun} have a {name_column.nl} containing the substring '{fragment}'?",
        f"List the {name_column.nl} of {noun} whose {name_column.nl} contains '{fragment}'.",
    ])
    query = SelectQuery(
        select=[SelectItem(_col(table, name_column))],
        tables=[table.name],
        where=Condition(
            _col(table, name_column), Operator.LIKE, Literal(f"%{fragment}%")
        ),
    )
    return GeneratedExample(
        question, _single(query), [f"%{fragment}%"], [EASY], pattern="like"
    )


# Pattern -> sampling weight.  Weights are tuned so the per-sample value
# count distribution approximates Fig. 9 (~50% no-value, ~36% one value,
# ~13% two, a tail of three) and all hardness classes are populated.
PATTERN_WEIGHTS: list[tuple[str, object, float]] = [
    # -- no-value patterns (~48% of samples, Fig. 9) --------------------
    # easy sketches
    ("count_all", pattern_count_all, 2),
    ("list_all", pattern_list_all, 2),
    ("select_column", pattern_select_column, 2),
    ("aggregate", pattern_aggregate, 2),
    ("distinct", pattern_distinct, 1.5),
    ("order_by", pattern_order_by, 2),
    # medium sketches
    ("group_count", pattern_group_count, 7),
    ("join_group", pattern_join_group, 7),
    # hard sketches
    ("nested_in", pattern_nested_in, 4),
    ("above_average", pattern_above_average, 3),
    ("nested_max", pattern_nested_max, 4),
    # extra-hard sketches
    ("nested_max_join", pattern_nested_max_join, 9),
    # -- one-value patterns (~38%) ---------------------------------------
    ("filter_category", pattern_filter_category, 4),
    ("filter_numeric", pattern_filter_numeric, 3),
    ("name_lookup", pattern_name_lookup, 2),
    ("count_filtered", pattern_count_filtered, 1.5),
    ("join_filter", pattern_join_filter, 5),
    ("bridge_join", pattern_bridge_join, 3),
    ("count_join", pattern_count_join, 3),
    ("superlative", pattern_superlative, 4),
    ("having", pattern_having, 3),
    ("two_columns", pattern_two_columns, 2),
    ("like", pattern_like, 1),
    ("nested_in_filtered", pattern_nested_in_filtered, 4),
    # -- two-value patterns (~13%) ---------------------------------------
    ("between", pattern_between, 1),
    ("two_conditions", pattern_two_conditions, 4),
    ("superlative_filter", pattern_superlative_filter, 1.5),
    ("or_conditions", pattern_or_conditions, 1.5),
    ("compound", pattern_compound, 9),
    # -- three-value tail (~1%) -------------------------------------------
    ("three_values", pattern_three_values, 1),
]


def decorate_question(question: str, rng: random.Random) -> str:
    """Surface variation that multiplies phrasing diversity.

    Prefix/suffix decorations keep the low-diversity no-value patterns from
    saturating the per-domain deduplication (without them, "How many X are
    there?" admits only a handful of distinct strings per domain).
    """
    roll = rng.random()
    if roll < 0.18:
        body = question[0].lower() + question[1:]
        return rng.choice(["Please ", "Could you ", "I want to know: "]) + body
    if roll < 0.28 and question.endswith("?"):
        return question[:-1] + " in the database?"
    if roll < 0.36 and question.endswith("."):
        return question[:-1] + " in the database."
    return question


def generate_example(ctx: TemplateContext) -> GeneratedExample | None:
    """Sample one pattern (by weight) and run it; None when inapplicable."""
    functions = [entry[1] for entry in PATTERN_WEIGHTS]
    weights = [entry[2] for entry in PATTERN_WEIGHTS]
    chosen = ctx.rng.choices(range(len(functions)), weights=weights, k=1)[0]
    example = functions[chosen](ctx)
    if example is not None:
        example.question = decorate_question(example.question, ctx.rng)
    return example
