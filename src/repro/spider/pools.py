"""Shared value pools for the synthetic corpus.

The generator draws base-data values from these lists so the databases
look like Spider's ("locations, specific codes, status, names and
salutations", paper Section V-A2).  Several pools intentionally overlap
with the gazetteer in :mod:`repro.ner.gazetteer` — a general-purpose NER
service does recognize real countries and names.
"""

from __future__ import annotations

FIRST_NAMES = [
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
    "Lisa", "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua",
    "Michelle", "Kevin", "Carol", "Brian", "Amanda", "George", "Melissa",
    "Anna", "Laura", "Alice", "Emma", "Olivia", "Sophia", "Lucas", "Noah",
    "Marco", "Pierre", "Hans", "Ingrid", "Yuki", "Elena", "Ivan", "Chen",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Wilson", "Anderson", "Taylor",
    "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson", "White",
    "Harris", "Clark", "Lewis", "Robinson", "Walker", "Young", "Allen",
    "King", "Wright", "Scott", "Hill", "Green", "Adams", "Nelson", "Baker",
    "Hall", "Campbell", "Mitchell", "Carter", "Roberts", "Kennedy",
    "Muller", "Schmidt", "Rossi", "Dubois", "Novak", "Kowalski", "Tanaka",
]

COUNTRIES = [
    "France", "Germany", "Italy", "Spain", "Portugal", "Switzerland",
    "Austria", "Netherlands", "Belgium", "Poland", "Sweden", "Norway",
    "Denmark", "Finland", "Ireland", "Greece", "Turkey", "Japan", "Brazil",
    "Canada", "Australia", "Mexico", "India", "China", "Egypt", "Kenya",
]

CITIES = [
    "Paris", "London", "Berlin", "Madrid", "Rome", "Lisbon", "Zurich",
    "Vienna", "Amsterdam", "Brussels", "Warsaw", "Stockholm", "Oslo",
    "Copenhagen", "Helsinki", "Dublin", "Athens", "Istanbul", "Tokyo",
    "Boston", "Seattle", "Denver", "Atlanta", "Dallas", "Geneva", "Munich",
    "Hamburg", "Barcelona", "Milan", "Lyon", "Chicago", "Houston",
]

CONTINENTS = ["Europe", "Asia", "Africa", "North America", "South America", "Oceania"]

LANGUAGES = [
    "English", "French", "German", "Spanish", "Italian", "Portuguese",
    "Dutch", "Polish", "Swedish", "Greek", "Turkish", "Japanese", "Arabic",
    "Mandarin", "Hindi", "Russian",
]

DEPARTMENT_NAMES = [
    "Engineering", "Marketing", "Finance", "Sales", "Research",
    "Operations", "Legal", "Design", "Support", "Logistics",
]

MAJORS = [
    "Biology", "Physics", "Chemistry", "Mathematics", "History",
    "Economics", "Philosophy", "Linguistics", "Sociology", "Geology",
]

FACULTY_RANKS = ["Professor", "Associate Professor", "Assistant Professor", "Lecturer", "Instructor"]

COURSE_TITLES = [
    "Databases", "Algorithms", "Statistics", "Calculus", "Genetics",
    "Thermodynamics", "Microeconomics", "Ethics", "Syntax", "Optics",
    "Machine Learning", "Compilers", "Topology", "Immunology", "Rhetoric",
]

PRODUCT_CATEGORIES = ["Electronics", "Clothing", "Furniture", "Toys", "Groceries", "Books", "Sports", "Garden"]

PRODUCT_NAMES = [
    "Laptop Pro", "Desk Lamp", "Wool Sweater", "Oak Table", "Toy Robot",
    "Coffee Maker", "Running Shoes", "Garden Hose", "Notebook", "Backpack",
    "Headphones", "Water Bottle", "Office Chair", "Puzzle Set", "Tent",
    "Keyboard", "Monitor", "Blender", "Yoga Mat", "Bookshelf",
]

DISTRICTS = ["Downtown", "Riverside", "Old Town", "Harbor", "Uptown", "Westside", "Eastgate", "Northfield"]

CAR_MAKERS = ["Toyota", "Volkswagen", "Ford", "Honda", "Fiat", "Renault", "Volvo", "Mazda", "Skoda", "Subaru"]

CAR_MODELS = [
    "Falcon", "Comet", "Aurora", "Pioneer", "Vertex", "Nimbus", "Strada",
    "Pulsar", "Meridian", "Solstice", "Horizon", "Vector", "Tempest",
    "Zephyr", "Odyssey", "Summit",
]

BOOK_TITLES = [
    "The Silent River", "Autumn Letters", "Glass Harbor", "The Last Cartographer",
    "Midnight Orchard", "Paper Cities", "The Iron Garden", "Salt and Smoke",
    "A Study of Tides", "The Hollow Crown", "Winter Arithmetic", "The Blue Door",
    "Maps of Nowhere", "The Clockmaker", "Ashes of Rome", "The Ninth Wave",
    "Stone Lullaby", "The Amber Room", "Quiet Thunder", "The Long Meadow",
]

GENRES = ["Fiction", "Mystery", "Biography", "Fantasy", "History", "Poetry", "Science", "Travel"]

SPECIALTY_CODES = {
    # code -> natural-language surface (the "hard" value mechanism:
    # the question says "cardiology", the database stores 'CARD')
    "CARD": "cardiology",
    "NEURO": "neurology",
    "ORTHO": "orthopedics",
    "PED": "pediatrics",
    "DERM": "dermatology",
    "ONC": "oncology",
}

AIRPORT_CODES = {
    "JFK": "John F Kennedy International Airport",
    "LAX": "Los Angeles",
    "ORD": "Chicago O'Hare",
    "ATL": "Atlanta",
    "CDG": "Paris Charles de Gaulle",
    "FRA": "Frankfurt",
    "AMS": "Amsterdam Schiphol",
    "MAD": "Madrid Barajas",
    "ZRH": "Zurich",
    "VIE": "Vienna",
}

AIRLINES = [
    "JetBlue Airways", "Delta", "United", "Lufthansa", "Swiss", "KLM",
    "Air France", "British Airways", "Emirates", "Ryanair", "EasyJet",
]

STADIUM_NAMES = [
    "Riverside Arena", "Sunset Stadium", "Liberty Park", "Crown Field",
    "Meadow Grounds", "Harbor Dome", "Victory Court", "Northern Lights Arena",
]

CONCERT_NAMES = [
    "Summer Jam", "Winter Fest", "Harvest Sound", "Night Waves",
    "Echo Festival", "Aurora Live", "Golden Hour", "Moonrise Show",
]

INSTRUMENTS = ["Violin", "Cello", "Piano", "Flute", "Oboe", "Trumpet", "Harp", "Clarinet"]

MOUNTAIN_NAMES = [
    "Mount Arden", "Silver Peak", "Eagle Crest", "Storm Ridge", "Mount Halvor",
    "Crystal Summit", "Iron Top", "Mount Selene", "Thunder Horn", "White Spire",
]

WINE_GRAPES = ["Merlot", "Pinot Noir", "Chardonnay", "Riesling", "Syrah", "Malbec", "Tempranillo"]

WINE_REGIONS = ["Bordeaux", "Tuscany", "Rioja", "Napa", "Mosel", "Barossa", "Mendoza"]

WINERY_NAMES = [
    "Stonegate Cellars", "Willow Creek Estate", "Bellavista Vineyards",
    "Red Hollow Winery", "Clearwater Estate", "Golden Vine House",
    "Oakhurst Cellars", "Santa Lucia Vineyards",
]

TRAIN_LINES = ["Express", "Regional", "Intercity", "Night", "Coastal", "Alpine"]

TRAIN_NAMES = [
    "Blue Arrow", "Silver Comet", "North Star", "Coastal Runner",
    "Alpine Flyer", "Red Falcon", "City Hopper", "Sunrise Express",
    "Evening Star", "Golden Eagle", "Valley Cruiser", "Harbor Link",
]

MOVIE_TITLES = [
    "The Glass Mountain", "Echoes of Tomorrow", "Paper Moonlight",
    "The Seventh Harbor", "Crimson Valley", "A Winter Apart",
    "The Cartographer's Daughter", "Static Skies", "The Orchard Gate",
    "Beneath the Salt", "Last Tram Home", "The Quiet Divide",
    "Northern Ash", "The Ivory Coast Run", "Half Past Midnight",
]

MOVIE_GENRES = ["Drama", "Comedy", "Thriller", "Documentary", "Animation", "Romance", "Adventure"]

CUISINES = ["Italian", "Japanese", "Mexican", "Indian", "Thai", "French", "Greek", "Lebanese"]

RESTAURANT_NAMES = [
    "The Copper Pot", "Basil and Stone", "Luna's Table", "The Green Fork",
    "Saffron House", "Harbor Kitchen", "The Olive Branch", "Ember and Oak",
    "Blue Lantern", "The Garden Spoon", "Cedar Grill", "The Brass Kettle",
]

DISH_NAMES = [
    "Garlic Noodles", "Lemon Chicken", "Spring Rolls", "Lamb Tagine",
    "Truffle Pasta", "Miso Ramen", "Paneer Tikka", "Beef Rendang",
    "Greek Salad", "Duck Confit", "Pad Thai", "Falafel Plate",
    "Margherita Pizza", "Tom Yum Soup", "Moussaka", "Butter Chicken",
]

PET_TYPES = ["Dog", "Cat", "Rabbit", "Hamster", "Parrot", "Turtle", "Goldfish"]

MUSEUM_NAMES = [
    "National History Museum", "Museum of Modern Art", "Maritime Museum",
    "Science Discovery Center", "Gallery of Antiquities", "Folk Heritage House",
    "Museum of Natural Wonders", "City Art Pavilion",
]
