"""Domain catalog for the synthetic Spider-like corpus.

Each domain declares its schema (tables, typed columns, PK/FK structure,
bridge tables), how base data is generated, and the natural-language
metadata the question templates need (entity nouns, per-column phrases,
surface forms).  Sixteen domains are defined; the default split keeps
four for the *unseen* dev set, mirroring Spider's disjoint-database
evaluation.

Value-difficulty mechanisms (paper Section V-A1) are wired through column
*roles*:

* ``category`` with identical surface -> *easy* values,
* ``category`` with plural/case surfaces and ``gender`` -> *medium*,
* ``code`` columns with alias surfaces ("cardiology" -> 'CARD') -> *hard*,
* ``bool`` columns with implicit concepts ("official languages" ->
  IsOfficial = 'T') -> *extra-hard*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.db.database import Database
from repro.errors import DatasetError
from repro.schema.model import Column, ColumnType, ForeignKey, Schema, Table
from repro.spider import pools


@dataclass(frozen=True)
class ColumnSpec:
    """Declarative column description.

    Attributes:
        name: physical column name.
        ctype: logical type.
        role: template role: ``id``/``name``/``category``/``numeric``/
            ``year``/``date``/``code``/``bool``/``gender``/``fk``/``""``.
        nl: natural-language phrase for the column ("age", "home country").
        gen: value generator: ``serial``, ``person``, ``pool``, ``int``,
            ``float``, ``year``, ``date``, ``tf`` or ``fk``.
        pool: value pool for ``pool`` generators.
        low / high: numeric range for ``int``/``float``/``year``.
        surfaces: db value -> NL surface forms differing from the value
            (medium/hard mechanisms); values not listed use themselves.
        concept: for ``bool`` columns, the NL adjective whose truth the
            column stores ("insured", "official", "spicy").
        fk: ``(table, column)`` this column references.
        pk: primary key flag.
        unique_values: force distinct generated values (entity names).
    """

    name: str
    ctype: ColumnType = ColumnType.TEXT
    role: str = ""
    nl: str = ""
    gen: str = "pool"
    pool: tuple[str, ...] = ()
    low: float = 0
    high: float = 100
    surfaces: dict[str, tuple[str, ...]] = field(default_factory=dict)
    concept: str = ""
    fk: tuple[str, str] | None = None
    pk: bool = False
    unique_values: bool = False


@dataclass(frozen=True)
class TableSpec:
    """Declarative table description.

    Attributes:
        name: physical table name.
        singular / plural: entity nouns for question templates.
        synonyms: alternative plural nouns used as paraphrase noise.
        columns: column specs.
        n_rows: how many rows to generate.
        is_bridge: bridge tables never anchor questions themselves.
    """

    name: str
    singular: str
    plural: str
    columns: tuple[ColumnSpec, ...]
    synonyms: tuple[str, ...] = ()
    n_rows: int = 40
    is_bridge: bool = False


@dataclass(frozen=True)
class DomainSpec:
    name: str
    tables: tuple[TableSpec, ...]

    def table(self, name: str) -> TableSpec:
        for table in self.tables:
            if table.name == name:
                return table
        raise DatasetError(f"domain {self.name!r} has no table {name!r}")


# ---------------------------------------------------------------------------
# Spec helpers

def _serial(name: str = "id") -> ColumnSpec:
    return ColumnSpec(name, ColumnType.NUMBER, role="id", gen="serial", pk=True)


def _fk(name: str, table: str, column: str) -> ColumnSpec:
    return ColumnSpec(name, ColumnType.NUMBER, role="fk", gen="fk", fk=(table, column))


def _person(name: str = "name", nl: str = "name") -> ColumnSpec:
    return ColumnSpec(name, role="name", nl=nl, gen="person", unique_values=True)


def _pool_name(name: str, pool: list[str], nl: str = "name") -> ColumnSpec:
    return ColumnSpec(
        name, role="name", nl=nl, gen="pool", pool=tuple(pool), unique_values=True
    )


def _category(
    name: str, pool: list[str], nl: str, surfaces: dict[str, tuple[str, ...]] | None = None
) -> ColumnSpec:
    return ColumnSpec(
        name, role="category", nl=nl, gen="pool", pool=tuple(pool),
        surfaces=surfaces or {},
    )


def _numeric(name: str, nl: str, low: float, high: float, *, is_float: bool = False) -> ColumnSpec:
    return ColumnSpec(
        name, ColumnType.NUMBER, role="numeric", nl=nl,
        gen="float" if is_float else "int", low=low, high=high,
    )


def _year(name: str, nl: str, low: int = 1960, high: int = 2020) -> ColumnSpec:
    return ColumnSpec(name, ColumnType.NUMBER, role="year", nl=nl, gen="year", low=low, high=high)


def _date(name: str, nl: str) -> ColumnSpec:
    return ColumnSpec(name, ColumnType.TIME, role="date", nl=nl, gen="date")


def _gender(name: str = "gender") -> ColumnSpec:
    return ColumnSpec(
        name, role="gender", nl="gender", gen="pool", pool=("F", "M"),
        surfaces={"F": ("female", "women"), "M": ("male", "men")},
    )


def _bool(name: str, concept: str) -> ColumnSpec:
    return ColumnSpec(name, role="bool", nl=concept, gen="tf", concept=concept)


def _code(name: str, code_map: dict[str, str], nl: str) -> ColumnSpec:
    return ColumnSpec(
        name, role="code", nl=nl, gen="pool", pool=tuple(code_map),
        surfaces={code: (surface,) for code, surface in code_map.items()},
    )


# ---------------------------------------------------------------------------
# The sixteen domains

DOMAIN_SPECS: dict[str, DomainSpec] = {}


def _register(spec: DomainSpec) -> None:
    if spec.name in DOMAIN_SPECS:
        raise DatasetError(f"duplicate domain {spec.name!r}")
    DOMAIN_SPECS[spec.name] = spec


_register(DomainSpec("employees", (
    TableSpec("department", "department", "departments", (
        _serial("dept_id"),
        _pool_name("dept_name", pools.DEPARTMENT_NAMES, "department name"),
        _category("city", pools.CITIES[:10], "city"),
        _numeric("budget", "budget", 100, 900),
    ), n_rows=8),
    TableSpec("employee", "employee", "employees", (
        _serial("emp_id"),
        _person(),
        _numeric("salary", "salary", 30000, 120000),
        _numeric("age", "age", 22, 65),
        _gender(),
        _fk("dept_id", "department", "dept_id"),
    ), synonyms=("workers", "staff members"), n_rows=60),
)))

_register(DomainSpec("college", (
    TableSpec("faculty", "faculty member", "faculty members", (
        _serial("fac_id"),
        _person(),
        _category("rank", pools.FACULTY_RANKS, "rank", surfaces={
            "Professor": ("professors",),
            "Lecturer": ("lecturers",),
            "Instructor": ("instructors",),
        }),
        _category("building", ["North Hall", "South Hall", "West Annex", "East Tower"], "building"),
    ), synonyms=("instructors",), n_rows=20),
    TableSpec("course", "course", "courses", (
        _serial("course_id"),
        _pool_name("title", pools.COURSE_TITLES, "title"),
        _numeric("credits", "credits", 1, 12),
        _fk("fac_id", "faculty", "fac_id"),
    ), synonyms=("classes",), n_rows=15),
    TableSpec("student", "student", "students", (
        _serial("stu_id"),
        _person(),
        _category("major", pools.MAJORS, "major", surfaces={
            "Biology": ("biology",), "Physics": ("physics",), "History": ("history",),
        }),
        _numeric("gpa", "GPA", 2, 4, is_float=True),
        _numeric("age", "age", 17, 30),
    ), n_rows=50),
    TableSpec("enrollment", "enrollment", "enrollments", (
        _fk("stu_id", "student", "stu_id"),
        _fk("course_id", "course", "course_id"),
        _numeric("grade", "grade", 1, 6),
    ), n_rows=90, is_bridge=True),
)))

_register(DomainSpec("shops", (
    TableSpec("shop", "shop", "shops", (
        _serial("shop_id"),
        _pool_name("shop_name", pools.RESTAURANT_NAMES, "name"),
        _category("district", pools.DISTRICTS, "district"),
        _year("open_year", "opening year", 1980, 2020),
    ), synonyms=("stores",), n_rows=12),
    TableSpec("product", "product", "products", (
        _serial("prod_id"),
        _pool_name("prod_name", pools.PRODUCT_NAMES, "name"),
        _numeric("price", "price", 5, 500, is_float=True),
        _category("category", pools.PRODUCT_CATEGORIES, "category"),
    ), synonyms=("items", "goods"), n_rows=20),
    TableSpec("stock", "stock record", "stock records", (
        _fk("shop_id", "shop", "shop_id"),
        _fk("prod_id", "product", "prod_id"),
        _numeric("quantity", "quantity", 0, 200),
    ), n_rows=60, is_bridge=True),
)))

_register(DomainSpec("cars", (
    TableSpec("maker", "maker", "makers", (
        _serial("maker_id"),
        _pool_name("maker_name", pools.CAR_MAKERS, "name"),
        _category("country", pools.COUNTRIES[:12], "country"),
    ), synonyms=("manufacturers",), n_rows=10),
    TableSpec("model", "model", "models", (
        _serial("model_id"),
        _pool_name("model_name", pools.CAR_MODELS, "name"),
        _fk("maker_id", "maker", "maker_id"),
    ), n_rows=16),
    TableSpec("car", "car", "cars", (
        _serial("car_id"),
        _fk("model_id", "model", "model_id"),
        _numeric("horsepower", "horsepower", 60, 400),
        _numeric("weight", "weight", 800, 2600),
        _bool("automatic", "automatic"),
        _year("prod_year", "production year", 1990, 2020),
    ), synonyms=("vehicles", "automobiles"), n_rows=50),
)))

_register(DomainSpec("library", (
    TableSpec("author", "author", "authors", (
        _serial("author_id"),
        _person(),
        _category("nationality", pools.COUNTRIES[:14], "nationality"),
    ), synonyms=("writers",), n_rows=18),
    TableSpec("book", "book", "books", (
        _serial("book_id"),
        _pool_name("title", pools.BOOK_TITLES, "title"),
        _fk("author_id", "author", "author_id"),
        _numeric("pages", "pages", 80, 900),
        _year("pub_year", "publication year", 1950, 2021),
        _category("genre", pools.GENRES, "genre"),
    ), n_rows=20),
    TableSpec("member", "member", "members", (
        _serial("member_id"),
        _person(),
        _numeric("age", "age", 10, 80),
    ), synonyms=("readers",), n_rows=30),
    TableSpec("loan", "loan", "loans", (
        _fk("member_id", "member", "member_id"),
        _fk("book_id", "book", "book_id"),
        _date("loan_date", "loan date"),
    ), n_rows=60, is_bridge=True),
)))

_register(DomainSpec("hospital", (
    TableSpec("physician", "physician", "physicians", (
        _serial("phys_id"),
        _person(),
        _code("specialty", pools.SPECIALTY_CODES, "specialty"),
        _numeric("salary", "salary", 60000, 250000),
    ), synonyms=("doctors",), n_rows=20),
    TableSpec("patient", "patient", "patients", (
        _serial("pat_id"),
        _person(),
        _numeric("age", "age", 1, 95),
        _bool("insured", "insured"),
    ), n_rows=50),
    TableSpec("appointment", "appointment", "appointments", (
        _serial("appt_id"),
        _fk("phys_id", "physician", "phys_id"),
        _fk("pat_id", "patient", "pat_id"),
        _date("appt_date", "appointment date"),
    ), n_rows=80, is_bridge=True),
)))

_register(DomainSpec("orchestra", (
    TableSpec("conductor", "conductor", "conductors", (
        _serial("cond_id"),
        _person(),
        _category("nationality", pools.COUNTRIES[:12], "nationality"),
        _year("year_started", "starting year", 1970, 2015),
    ), n_rows=12),
    TableSpec("orchestra", "orchestra", "orchestras", (
        _serial("orch_id"),
        ColumnSpec("orch_name", role="name", nl="name", gen="orchestra_name", unique_values=True),
        _fk("cond_id", "conductor", "cond_id"),
        _year("founded_year", "founding year", 1850, 2000),
        _category("city", pools.CITIES[:12], "city"),
    ), n_rows=14),
    TableSpec("performance", "performance", "performances", (
        _serial("perf_id"),
        _fk("orch_id", "orchestra", "orch_id"),
        _numeric("attendance", "attendance", 200, 3000),
        _date("perf_date", "performance date"),
    ), synonyms=("shows",), n_rows=40),
)))

_register(DomainSpec("climbing", (
    TableSpec("mountain", "mountain", "mountains", (
        _serial("mount_id"),
        _pool_name("mount_name", pools.MOUNTAIN_NAMES, "name"),
        _numeric("height", "height", 1200, 8900),
        _category("country", pools.COUNTRIES[:10], "country"),
    ), synonyms=("peaks",), n_rows=10),
    TableSpec("climber", "climber", "climbers", (
        _serial("climber_id"),
        _person(),
        _category("country", pools.COUNTRIES[:14], "country"),
        _fk("mount_id", "mountain", "mount_id"),
        _numeric("time_minutes", "climbing time", 120, 900),
    ), n_rows=35),
)))

_register(DomainSpec("wines", (
    TableSpec("winery", "winery", "wineries", (
        _serial("winery_id"),
        _pool_name("winery_name", pools.WINERY_NAMES, "name"),
        _category("region", pools.WINE_REGIONS, "region"),
    ), n_rows=8),
    TableSpec("wine", "wine", "wines", (
        _serial("wine_id"),
        ColumnSpec("wine_name", role="name", nl="name", gen="wine_name", unique_values=True),
        _fk("winery_id", "winery", "winery_id"),
        _year("vintage", "vintage year", 1990, 2020),
        _numeric("score", "score", 70, 100),
        _numeric("price", "price", 8, 300, is_float=True),
        _category("grape", pools.WINE_GRAPES, "grape"),
    ), n_rows=36),
)))

_register(DomainSpec("trains", (
    TableSpec("station", "station", "stations", (
        _serial("station_id"),
        ColumnSpec("station_name", role="name", nl="name", gen="station_name", unique_values=True),
        _category("city", pools.CITIES[:14], "city"),
        _numeric("platforms", "number of platforms", 1, 20),
    ), n_rows=14),
    TableSpec("train", "train", "trains", (
        _serial("train_id"),
        _pool_name("train_name", pools.TRAIN_NAMES, "name"),
        _numeric("speed", "maximum speed", 80, 320),
        _category("line", pools.TRAIN_LINES, "line"),
    ), n_rows=12),
    TableSpec("route", "route stop", "route stops", (
        _fk("train_id", "train", "train_id"),
        _fk("station_id", "station", "station_id"),
        _numeric("stop_order", "stop order", 1, 12),
    ), n_rows=48, is_bridge=True),
)))

_register(DomainSpec("movies", (
    TableSpec("director", "director", "directors", (
        _serial("dir_id"),
        _person(),
        _category("country", pools.COUNTRIES[:12], "country"),
    ), synonyms=("filmmakers",), n_rows=14),
    TableSpec("movie", "movie", "movies", (
        _serial("movie_id"),
        _pool_name("title", pools.MOVIE_TITLES, "title"),
        _fk("dir_id", "director", "dir_id"),
        _year("release_year", "release year", 1970, 2021),
        _numeric("rating", "rating", 1, 10, is_float=True),
        _category("genre", pools.MOVIE_GENRES, "genre"),
    ), synonyms=("films",), n_rows=15),
)))

_register(DomainSpec("restaurants", (
    TableSpec("restaurant", "restaurant", "restaurants", (
        _serial("rest_id"),
        _pool_name("rest_name", pools.RESTAURANT_NAMES, "name"),
        _category("cuisine", pools.CUISINES, "cuisine", surfaces={
            "Italian": ("italian",), "Japanese": ("japanese",), "Indian": ("indian",),
        }),
        _category("city", pools.CITIES[:10], "city"),
        _numeric("stars", "star rating", 1, 5),
    ), synonyms=("eateries",), n_rows=12),
    TableSpec("dish", "dish", "dishes", (
        _serial("dish_id"),
        _pool_name("dish_name", pools.DISH_NAMES, "name"),
        _fk("rest_id", "restaurant", "rest_id"),
        _numeric("price", "price", 4, 60, is_float=True),
        _bool("spicy", "spicy"),
    ), synonyms=("meals",), n_rows=32),
)))

# ------------------------------------------------------------- dev domains

_register(DomainSpec("pets", (
    TableSpec("student", "student", "students", (
        _serial("stuid"),
        _person(),
        _numeric("age", "age", 17, 30),
        _gender("sex"),
        _category("home_country", pools.COUNTRIES[:12], "home country", surfaces={
            "France": ("French",), "Germany": ("German",), "Italy": ("Italian",),
            "Spain": ("Spanish",),
        }),
    ), n_rows=40),
    TableSpec("pet", "pet", "pets", (
        _serial("petid"),
        _category("pet_type", pools.PET_TYPES, "type", surfaces={
            "Dog": ("dogs",), "Cat": ("cats",),
        }),
        _bool("vaccinated", "vaccinated"),
        _numeric("pet_age", "age", 1, 16),
        _numeric("weight", "weight", 1, 60, is_float=True),
    ), synonyms=("animals",), n_rows=30),
    TableSpec("has_pet", "ownership", "ownerships", (
        _fk("stuid", "student", "stuid"),
        _fk("petid", "pet", "petid"),
    ), n_rows=35, is_bridge=True),
)))

_register(DomainSpec("flights", (
    TableSpec("airline", "airline", "airlines", (
        _serial("airline_id"),
        _pool_name("airline_name", pools.AIRLINES, "name"),
        _category("country", pools.COUNTRIES[:10], "country"),
    ), synonyms=("carriers",), n_rows=9),
    TableSpec("airport", "airport", "airports", (
        _serial("airport_id"),
        _code("code", pools.AIRPORT_CODES, "code"),
        _category("city", pools.CITIES[:12], "city"),
    ), n_rows=10),
    TableSpec("flight", "flight", "flights", (
        _serial("flight_id"),
        _fk("airline_id", "airline", "airline_id"),
        _fk("airport_id", "airport", "airport_id"),
        _numeric("duration", "duration in hours", 1, 14),
        _date("flight_date", "flight date"),
    ), n_rows=55),
)))

_register(DomainSpec("concerts", (
    TableSpec("stadium", "stadium", "stadiums", (
        _serial("stadium_id"),
        _pool_name("stadium_name", pools.STADIUM_NAMES, "name"),
        _numeric("capacity", "capacity", 2000, 80000),
        _category("city", pools.CITIES[:10], "city"),
    ), synonyms=("venues",), n_rows=8),
    TableSpec("singer", "singer", "singers", (
        _serial("singer_id"),
        _person(),
        _category("country", pools.COUNTRIES[:12], "country"),
        _numeric("age", "age", 18, 70),
    ), synonyms=("artists", "musicians"), n_rows=24),
    TableSpec("concert", "concert", "concerts", (
        _serial("concert_id"),
        _pool_name("concert_name", pools.CONCERT_NAMES, "name"),
        _fk("stadium_id", "stadium", "stadium_id"),
        _fk("singer_id", "singer", "singer_id"),
        _year("concert_year", "year", 2000, 2021),
        _numeric("attendance", "attendance", 500, 60000),
        _bool("sold_out", "sold out"),
    ), n_rows=30),
)))

_register(DomainSpec("world_geo", (
    TableSpec("country", "country", "countries", (
        _serial("country_id"),
        _pool_name("country_name", pools.COUNTRIES, "name"),
        _category("continent", pools.CONTINENTS, "continent"),
        _numeric("population", "population", 1, 1400),
        _numeric("area", "surface area", 10, 17000),
    ), synonyms=("nations",), n_rows=20),
    TableSpec("city", "city", "cities", (
        _serial("city_id"),
        _pool_name("city_name", pools.CITIES, "name"),
        _fk("country_id", "country", "country_id"),
        _numeric("city_population", "population", 1, 40),
    ), n_rows=28),
    TableSpec("language", "language record", "language records", (
        _serial("lang_id"),
        _fk("country_id", "country", "country_id"),
        _category("language", pools.LANGUAGES, "language"),
        _bool("is_official", "official"),
    ), n_rows=40),
)))

DEFAULT_TRAIN_DOMAINS: tuple[str, ...] = (
    "employees", "college", "shops", "cars", "library", "hospital",
    "orchestra", "climbing", "wines", "trains", "movies", "restaurants",
)

DEFAULT_DEV_DOMAINS: tuple[str, ...] = ("pets", "flights", "concerts", "world_geo")


# ---------------------------------------------------------------------------
# Materialization


@dataclass
class DomainInstance:
    """A domain materialized into a schema and deterministic base data."""

    spec: DomainSpec
    schema: Schema
    rows: dict[str, list[tuple]]

    def build_database(self, path: str | None = None) -> Database:
        """Create and populate a SQLite database for this domain."""
        database = Database.create(self.schema, path)
        for table in self.schema.tables:
            database.insert_rows(table.name, self.rows[table.name])
        return database

    def column_spec(self, table_name: str, column_name: str) -> ColumnSpec:
        for column in self.spec.table(table_name).columns:
            if column.name == column_name:
                return column
        raise DatasetError(
            f"domain {self.spec.name!r} has no column {table_name}.{column_name}"
        )

    def column_values(self, table_name: str, column_name: str) -> list[object]:
        table_spec = self.spec.table(table_name)
        index = [c.name for c in table_spec.columns].index(column_name)
        return [row[index] for row in self.rows[table_name]]


def _column_type(spec: ColumnSpec) -> ColumnType:
    if spec.gen in ("serial", "int", "float", "year", "fk"):
        return ColumnType.NUMBER
    if spec.gen == "date":
        return ColumnType.TIME
    return spec.ctype


def build_schema(spec: DomainSpec) -> Schema:
    """Build the :class:`Schema` for a domain spec."""
    tables = []
    foreign_keys = []
    for table_spec in spec.tables:
        columns = tuple(
            Column(
                name=column.name,
                table=table_spec.name,
                column_type=_column_type(column),
                is_primary_key=column.pk,
            )
            for column in table_spec.columns
        )
        tables.append(Table(name=table_spec.name, columns=columns))
        for column in table_spec.columns:
            if column.fk is not None:
                foreign_keys.append(
                    ForeignKey(table_spec.name, column.name, column.fk[0], column.fk[1])
                )
    return Schema(name=spec.name, tables=list(tables), foreign_keys=foreign_keys)


def _generate_value(
    column: ColumnSpec,
    row_index: int,
    rng: random.Random,
    parent_keys: dict[tuple[str, str], list[object]],
    used: set[object],
) -> object:
    if column.gen == "serial":
        return row_index + 1
    if column.gen == "fk":
        assert column.fk is not None
        return rng.choice(parent_keys[column.fk])
    if column.gen == "person":
        for _attempt in range(50):
            value = f"{rng.choice(pools.FIRST_NAMES)} {rng.choice(pools.LAST_NAMES)}"
            if value not in used:
                return value
        return f"{rng.choice(pools.FIRST_NAMES)} {rng.choice(pools.LAST_NAMES)} {row_index}"
    if column.gen == "pool":
        if column.unique_values:
            available = [v for v in column.pool if v not in used]
            if available:
                return rng.choice(available)
            return f"{rng.choice(column.pool)} {row_index + 1}"
        return rng.choice(column.pool)
    if column.gen == "int":
        return rng.randint(int(column.low), int(column.high))
    if column.gen == "float":
        return round(rng.uniform(column.low, column.high), 1)
    if column.gen == "year":
        return rng.randint(int(column.low), int(column.high))
    if column.gen == "date":
        year = rng.randint(2005, 2021)
        month = rng.randint(1, 12)
        day = rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"
    if column.gen == "tf":
        return rng.choice(["T", "T", "F"])  # skew so both sides are non-empty
    if column.gen == "orchestra_name":
        city = rng.choice(pools.CITIES)
        kind = rng.choice(["Philharmonic", "Symphony", "Chamber Orchestra"])
        value = f"{city} {kind}"
        return value if value not in used else f"{value} {row_index + 1}"
    if column.gen == "wine_name":
        grape = rng.choice(pools.WINE_GRAPES)
        suffix = rng.choice(["Reserve", "Classic", "Estate", "Grand Cru"])
        value = f"{grape} {suffix}"
        return value if value not in used else f"{value} {row_index + 1}"
    if column.gen == "station_name":
        city = rng.choice(pools.CITIES)
        kind = rng.choice(["Central", "North", "South", "Harbor"])
        value = f"{city} {kind}"
        return value if value not in used else f"{value} {row_index + 1}"
    raise DatasetError(f"unknown generator {column.gen!r}")


def build_domain(name: str, *, seed: int = 0) -> DomainInstance:
    """Materialize a domain: deterministic rows for a given seed."""
    spec = DOMAIN_SPECS.get(name)
    if spec is None:
        raise DatasetError(f"unknown domain {name!r}")
    # zlib.crc32 is a *stable* hash: Python's built-in hash() is randomized
    # per process and would make the corpus irreproducible across runs.
    import zlib

    rng = random.Random((zlib.crc32(name.encode()) & 0xFFFF) * 1000 + seed)
    schema = build_schema(spec)

    rows: dict[str, list[tuple]] = {}
    parent_keys: dict[tuple[str, str], list[object]] = {}
    for table_spec in spec.tables:
        table_rows: list[tuple] = []
        used_per_column: dict[str, set[object]] = {c.name: set() for c in table_spec.columns}
        seen_keys: set[tuple] = set()
        for row_index in range(table_spec.n_rows):
            for _attempt in range(20):
                row = tuple(
                    _generate_value(
                        column, row_index, rng, parent_keys, used_per_column[column.name]
                    )
                    for column in table_spec.columns
                )
                pk_positions = [
                    i for i, c in enumerate(table_spec.columns) if c.pk
                ] or list(range(len(row)))
                key = tuple(row[i] for i in pk_positions)
                if key not in seen_keys:
                    seen_keys.add(key)
                    break
            else:
                continue
            for column, value in zip(table_spec.columns, row):
                used_per_column[column.name].add(value)
            table_rows.append(row)
        rows[table_spec.name] = table_rows
        for i, column in enumerate(table_spec.columns):
            if column.pk:
                parent_keys[(table_spec.name, column.name)] = [
                    row[i] for row in table_rows
                ]
    return DomainInstance(spec=spec, schema=schema, rows=rows)
