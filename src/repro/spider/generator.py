"""Corpus generator: assembles the synthetic Spider-like dataset.

For every domain the generator materializes the database, runs the
weighted question patterns, validates each generated query by *executing*
it (a gold query that fails or that returns an absurd result would poison
the Execution Accuracy evaluation), lowers it to SemQL, classifies its
hardness, and deduplicates questions.  Train and dev splits draw from
disjoint domain sets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.db.database import Database
from repro.errors import ExecutionError, SemQLError
from repro.evaluation.difficulty import classify_hardness
from repro.schema.graph import SchemaGraph
from repro.semql.from_sql import query_to_semql
from repro.spider.corpus import Example, SpiderCorpus
from repro.spider.domains import (
    DEFAULT_DEV_DOMAINS,
    DEFAULT_TRAIN_DOMAINS,
    DomainInstance,
    build_domain,
)
from repro.spider.templates import TemplateContext, generate_example
from repro.sql.render import SqlRenderer


@dataclass(frozen=True)
class CorpusConfig:
    """Corpus-size and noise knobs.

    Attributes:
        train_per_domain: examples per training domain.
        dev_per_domain: examples per dev domain.
        seed: global RNG seed (the corpus is fully deterministic).
        noise: probability of entity-noun synonym substitution, the main
            difficulty driver for schema linking on unseen databases.
        train_domains / dev_domains: domain name splits (disjoint).
    """

    train_per_domain: int = 250
    dev_per_domain: int = 120
    seed: int = 42
    noise: float = 0.25
    train_domains: tuple[str, ...] = DEFAULT_TRAIN_DOMAINS
    dev_domains: tuple[str, ...] = DEFAULT_DEV_DOMAINS


def _generate_for_domain(
    instance: DomainInstance,
    database: Database,
    count: int,
    rng: random.Random,
    *,
    noise: float,
) -> list[Example]:
    renderer = SqlRenderer(SchemaGraph(instance.schema))
    ctx = TemplateContext(instance, rng, noise=noise)
    examples: list[Example] = []
    seen_questions: set[str] = set()
    attempts = 0
    max_attempts = count * 30
    while len(examples) < count and attempts < max_attempts:
        attempts += 1
        generated = generate_example(ctx)
        if generated is None:
            continue
        if generated.question in seen_questions:
            continue
        try:
            sql = renderer.render(generated.query)
            rows = database.execute(sql, max_rows=5000)
            semql = query_to_semql(generated.query, instance.schema)
        except (ExecutionError, SemQLError):
            continue
        if not rows:
            # Empty gold results make Execution Accuracy trivially gameable
            # (any failing-but-empty prediction would match); keep a few for
            # realism but skip most.
            if rng.random() < 0.85:
                continue
        seen_questions.add(generated.question)
        examples.append(
            Example(
                question=generated.question,
                db_id=instance.schema.name,
                gold_sql=sql,
                gold_query=generated.query,
                gold_semql=semql,
                values=generated.values,
                value_difficulties=generated.value_difficulties,
                hardness=classify_hardness(generated.query),
                pattern=generated.pattern,
            )
        )
    return examples


def generate_corpus(config: CorpusConfig | None = None) -> SpiderCorpus:
    """Generate the full corpus for ``config`` (deterministic per seed)."""
    config = config or CorpusConfig()
    overlap = set(config.train_domains) & set(config.dev_domains)
    if overlap:
        raise ValueError(f"train/dev domains overlap: {sorted(overlap)}")

    rng = random.Random(config.seed)
    domains: dict[str, DomainInstance] = {}
    train: list[Example] = []
    dev: list[Example] = []

    for name in config.train_domains:
        instance = build_domain(name, seed=config.seed)
        domains[name] = instance
        with instance.build_database() as database:
            train.extend(
                _generate_for_domain(
                    instance, database, config.train_per_domain, rng,
                    noise=config.noise,
                )
            )
    for name in config.dev_domains:
        instance = build_domain(name, seed=config.seed)
        domains[name] = instance
        with instance.build_database() as database:
            dev.extend(
                _generate_for_domain(
                    instance, database, config.dev_per_domain, rng,
                    noise=config.noise,
                )
            )

    rng.shuffle(train)
    rng.shuffle(dev)
    return SpiderCorpus(
        train=train,
        dev=dev,
        domains=domains,
        train_domains=config.train_domains,
        dev_domains=config.dev_domains,
    )
