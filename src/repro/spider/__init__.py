"""Synthetic Spider-like corpus: domains, templates, generator, stats."""

from repro.spider.corpus import Example, SpiderCorpus, load_corpus, load_examples
from repro.spider.domains import (
    DEFAULT_DEV_DOMAINS,
    DEFAULT_TRAIN_DOMAINS,
    DOMAIN_SPECS,
    DomainInstance,
    build_domain,
    build_schema,
)
from repro.spider.generator import CorpusConfig, generate_corpus
from repro.spider.stats import (
    PAPER_SAMPLES_WITH_VALUES,
    PAPER_TOTAL_VALUES,
    PAPER_VALUE_DISTRIBUTION,
    ValueDistribution,
    hardness_distribution,
    value_difficulty_distribution,
    value_distribution,
)

__all__ = [
    "CorpusConfig",
    "DEFAULT_DEV_DOMAINS",
    "DEFAULT_TRAIN_DOMAINS",
    "DOMAIN_SPECS",
    "DomainInstance",
    "Example",
    "PAPER_SAMPLES_WITH_VALUES",
    "PAPER_TOTAL_VALUES",
    "PAPER_VALUE_DISTRIBUTION",
    "SpiderCorpus",
    "ValueDistribution",
    "build_domain",
    "build_schema",
    "generate_corpus",
    "hardness_distribution",
    "load_corpus",
    "load_examples",
    "value_difficulty_distribution",
    "value_distribution",
]
