"""Live schema evolution: drift detection, background refresh, corpus growth.

The subsystem keeps a running service's knowledge of its databases
current without downtime:

* :mod:`repro.evolve.watcher` — :class:`SchemaWatcher` detects drift,
  including count-preserving UPDATEs the registry's cheap fingerprint
  misses.
* :mod:`repro.evolve.refresher` — :class:`KBRefresher` polls off-path,
  rebuilds index/searcher/feature bundles in the background, and swaps
  them atomically into the :class:`~repro.index.registry.IndexRegistry`.
* :mod:`repro.evolve.corpus` — derives validated Q->SQL examples from
  the live schema as diffs arrive (``repro corpus generate``).

See ``docs/schema-evolution.md`` for the lifecycle and metrics.
"""

from repro.evolve.corpus import CorpusExample, CorpusWriter, generate_examples
from repro.evolve.refresher import KBRefresher
from repro.evolve.watcher import (
    DriftReport,
    DriftVerdict,
    SchemaWatcher,
    deep_fingerprint,
)

__all__ = [
    "CorpusExample",
    "CorpusWriter",
    "DriftReport",
    "DriftVerdict",
    "KBRefresher",
    "SchemaWatcher",
    "deep_fingerprint",
    "generate_examples",
]
