"""Background KB refresher: poll, rebuild off-path, swap with zero downtime.

The :class:`KBRefresher` is a supervised daemon thread that closes the
gap the registry's lazy rebuild leaves open: it polls every watched
database through a :class:`~repro.evolve.watcher.SchemaWatcher` on a
jittered interval, and when drift is detected it

1. opens a *fresh* :class:`~repro.db.database.Database` from the file
   (so DDL is re-introspected — new tables and columns appear in the
   schema object),
2. rebuilds the :class:`~repro.index.inverted.InvertedIndex` /
   :class:`~repro.index.similarity.SimilaritySearcher` bundle and
   pre-featurizes the new schema into each attached model's
   :class:`~repro.model.featurize.SchemaFeatureCache` — all off the
   request path,
3. swaps the bundle into the :class:`~repro.index.registry.IndexRegistry`
   under its existing lock with a version bump, and notifies every
   attached :class:`~repro.serving.service.TranslationService` (which
   rebinds its runtime under the per-runtime lock and invalidates the
   database's translation-cache entries).

No request ever blocks on a rebuild: while a rebuild is in flight the
registry serves the previous entry (``mark_background_refresh`` arms the
stale-serve path in ``get()``), and the swap itself is a dictionary
assignment plus a handful of attribute rebinds — microseconds, measured
by the ``evolve_index_swap_seconds`` histogram.

Failures back off exponentially per database and never kill the thread;
a manual refresh can be forced through :meth:`trigger` (async — SIGHUP
handlers and cluster IPC frames use it) or :meth:`refresh_now`
(synchronous — the ``POST /admin/refresh`` route uses it).

When a :class:`~repro.evolve.corpus.CorpusWriter` is configured, each
swap also emits validated Q->SQL examples for the touched tables, so the
training corpus grows with the schema.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.concurrency import ExponentialBackoff
from repro.concurrency import make_lock
from repro.db.database import Database
from repro.evolve.corpus import CorpusWriter, generate_examples
from repro.evolve.watcher import DEFAULT_SAMPLE_ROWS, SchemaWatcher
from repro.index.inverted import InvertedIndex
from repro.index.registry import (
    IndexEntry,
    IndexRegistry,
    database_fingerprint,
    get_default_registry,
)
from repro.index.similarity import SimilaritySearcher
from repro.logs import get_logger
from repro.metrics import MetricsRegistry

_LOG = get_logger(__name__)

DEFAULT_INTERVAL_S = 30.0
# +/- fraction of the interval each sleep is jittered by, so a fleet of
# workers polling the same files never thunders in lockstep.
DEFAULT_JITTER = 0.2


@dataclass
class _WatchTarget:
    """Refresher-side state for one watched database."""

    database_id: str     # external routing id (what services key runtimes by)
    registry_key: str    # schema name (what the IndexRegistry keys entries by)
    path: str
    database: Database   # the *serving* database whose schema gets swapped
    watcher: SchemaWatcher
    backoff: ExponentialBackoff
    retry_at: float = 0.0  # monotonic; 0 = not backing off


class KBRefresher:
    """Supervised background refresher for live schema evolution.

    Args:
        registry: the index registry to swap rebuilt entries into
            (defaults to the process-wide one).
        interval_s: base polling interval; each sleep is jittered by
            ``jitter`` so multiple refreshers never align.
        metrics: registry for the ``evolve_*`` instruments — pass the
            serving registry so they appear on the same ``/metrics``
            exposition.
        sample_rows: per-table content-hash window for the watchers.
        corpus_path: JSONL file to grow with validated Q->SQL examples
            on every swap (``None`` disables corpus growth).
        corpus_policy: optional policy engine the generated examples are
            validated against.
    """

    def __init__(
        self,
        registry: IndexRegistry | None = None,
        *,
        interval_s: float = DEFAULT_INTERVAL_S,
        metrics: MetricsRegistry | None = None,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        jitter: float = DEFAULT_JITTER,
        corpus_path: str | Path | None = None,
        corpus_policy=None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        self.registry = registry if registry is not None else get_default_registry()
        self.interval_s = float(interval_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sample_rows = sample_rows
        self.jitter = max(0.0, min(0.9, jitter))
        self.corpus = CorpusWriter(corpus_path) if corpus_path is not None else None
        self.corpus_policy = corpus_policy
        self._targets: dict[str, _WatchTarget] = {}  # guarded by: _lock
        self._services: list = []  # guarded by: _lock
        self._last_verdicts: dict[str, str] = {}  # guarded by: _lock
        self._swaps = 0  # guarded by: _lock
        self._force_pending = False  # guarded by: _lock
        self._lock = make_lock("KBRefresher._lock")
        # Serializes refresh cycles (the daemon's scheduled ones against
        # manual refresh_now calls); never held while _lock is waited on
        # by readers of stats().
        self._cycle_lock = make_lock("KBRefresher._cycle_lock")
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # RNG for sleep jitter only; results never depend on it.
        self._rng = random.Random()
        m = self.metrics
        self._runs_total = m.counter(
            "evolve_refresh_runs_total",
            "background refresh polls (one per watched database per cycle)")
        self._failures_total = m.counter(
            "evolve_refresh_failures_total",
            "refresh polls that raised (retried with backoff)")
        self._swap_hist = m.histogram(
            "evolve_index_swap_seconds",
            "wall time of one atomic index swap (registry + runtimes)")
        self._corpus_total = m.counter(
            "evolve_corpus_examples_total",
            "validated corpus examples emitted by schema-driven growth")
        self._watched_gauge = m.gauge(
            "evolve_watched_databases", "databases under drift watch")

    # ------------------------------------------------------------- wiring

    def watch(
        self,
        database: Database,
        *,
        database_id: str | None = None,
        path: str | Path | None = None,
    ) -> None:
        """Put one served database under drift watch.

        The database must be file-backed (or ``path`` given explicitly):
        the watcher opens its own read-only connection and rebuilds are
        re-introspected from the file, neither of which an in-memory
        database supports.
        """
        resolved = str(path) if path is not None else database.path
        if resolved is None:
            raise ValueError(
                "KBRefresher requires a file-backed database "
                "(in-memory databases cannot be re-opened for rebuilds)"
            )
        db_id = database_id if database_id is not None else database.schema.name
        target = _WatchTarget(
            database_id=db_id,
            registry_key=database.schema.name,
            path=resolved,
            database=database,
            watcher=SchemaWatcher(resolved, sample_rows=self.sample_rows),
            backoff=ExponentialBackoff(
                initial=min(1.0, self.interval_s),
                max_delay=max(self.interval_s * 8, 10.0),
            ),
        )
        with self._lock:
            self._targets[db_id] = target
            self._watched_gauge.set(len(self._targets))
        self.registry.mark_background_refresh(target.registry_key)

    def attach_service(self, service) -> None:
        """Notify ``service`` on every swap (and expose this refresher on
        it for the admin route and ``/healthz``)."""
        with self._lock:
            if all(service is not existing for existing in self._services):
                self._services.append(service)
        service.refresher = self

    # ---------------------------------------------------------- lifecycle

    def start(self) -> "KBRefresher":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="kb-refresher", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        self._stop.set()
        self._wake.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None
        with self._lock:
            targets = list(self._targets.values())
        for target in targets:
            self.registry.mark_background_refresh(target.registry_key, False)
            target.watcher.close()

    def __enter__(self) -> "KBRefresher":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ----------------------------------------------------------- triggers

    def trigger(self) -> None:
        """Schedule an out-of-band full refresh (non-blocking; safe from
        signal handlers and the cluster IPC reader thread)."""
        with self._lock:
            self._force_pending = True
        self._wake.set()

    def refresh_now(
        self, database_id: str | None = None, *, force: bool = True
    ) -> list[dict]:
        """Run one refresh cycle synchronously on the caller's thread.

        ``force=True`` rebuilds and swaps even when the watcher reports
        no drift (the admin-route contract: "refresh" always refreshes).
        Returns one info dict per database that was swapped.
        """
        return self._run_cycle(only=database_id, force=force)

    # --------------------------------------------------------------- loop

    def _loop(self) -> None:
        while not self._stop.is_set():
            spread = self.interval_s * self.jitter
            delay = self.interval_s + self._rng.uniform(-spread, spread)
            self._wake.wait(timeout=max(0.05, delay))
            self._wake.clear()
            if self._stop.is_set():
                return
            with self._lock:
                force = self._force_pending
                self._force_pending = False
            try:
                self._run_cycle(force=force)
            except Exception:
                # The per-target path already counts and backs off; this
                # guard only catches refresher bugs — the daemon must
                # survive them (it is the zero-downtime mechanism).
                self._failures_total.inc()
                _LOG.exception("refresh cycle failed")

    def _run_cycle(self, *, only: str | None = None, force: bool = False) -> list[dict]:
        with self._cycle_lock:
            with self._lock:
                targets = [
                    t for t in self._targets.values()
                    if only is None or t.database_id == only
                ]
            swapped: list[dict] = []
            for target in targets:
                if self._stop.is_set():
                    break
                if not force and target.retry_at > time.monotonic():
                    continue  # still backing off after a failure
                self._runs_total.inc()
                try:
                    info = self._refresh_one(target, force=force)
                    target.backoff.reset()
                    target.retry_at = 0.0
                except Exception as exc:
                    self._failures_total.inc()
                    delay = target.backoff.next_delay()
                    target.retry_at = time.monotonic() + delay
                    _LOG.warning(
                        "refresh of %r failed (retrying in %.1fs): %s",
                        target.database_id, delay, exc,
                    )
                    continue
                if info is not None:
                    swapped.append(info)
            return swapped

    # ------------------------------------------------------------ refresh

    def _refresh_one(self, target: _WatchTarget, *, force: bool) -> dict | None:
        report = target.watcher.poll(force_deep=force)
        with self._lock:
            self._last_verdicts[target.database_id] = report.verdict.value
        if not report.changed and not force:
            return None

        # ---- build everything off the request path ----
        fresh = Database.open(target.path)
        try:
            new_schema = fresh.schema
            fingerprint = database_fingerprint(fresh)
            index = InvertedIndex.build(fresh)
            searcher = SimilaritySearcher(index)
            entry = IndexEntry(
                target.registry_key, fingerprint, index, searcher, "refreshed"
            )
            with self._lock:
                services = list(self._services)
            self._prefeaturize(services, target.database_id, new_schema)

            # ---- the swap: dictionary assignment + attribute rebinds ----
            start = time.perf_counter()
            version = self.registry.swap(entry)
            for service in services:
                service.on_index_swap(target.database_id, entry, schema=new_schema)
            swap_s = time.perf_counter() - start
            self._swap_hist.observe(swap_s)
            with self._lock:
                self._swaps += 1

            examples_added = self._grow_corpus(fresh, target, report)
        finally:
            fresh.close()

        info = {
            "database_id": target.database_id,
            "verdict": report.verdict.value,
            "version": version,
            "swap_ms": round(1000.0 * swap_s, 3),
            "corpus_examples": examples_added,
            **report.as_dict(),
        }
        _LOG.info(
            "swapped index for %r (verdict=%s, version=%d, %.2fms)",
            target.database_id, report.verdict.value, version, 1000.0 * swap_s,
        )
        return info

    def _prefeaturize(self, services, database_id: str, schema) -> None:
        """Warm each attached model's schema-feature cache for the new
        schema object, so the first post-swap request pays nothing."""
        for service in services:
            runtime = service.runtimes.get(database_id)
            pipeline = getattr(runtime, "pipeline", None)
            model = getattr(pipeline, "model", None)
            cache = getattr(model, "schema_cache", None)
            vocab = getattr(model, "vocab", None)
            if cache is not None and vocab is not None:
                cache.get(schema, vocab)

    def _grow_corpus(self, fresh: Database, target: _WatchTarget, report) -> int:
        if self.corpus is None:
            return 0
        touched = list(report.touched_tables)
        examples = generate_examples(
            fresh,
            database_id=target.database_id,
            tables=touched or None,  # full sweep on force / first swap
            policy=self.corpus_policy,
            validate=True,
        )
        added = self.corpus.append(examples)
        if added:
            self._corpus_total.inc(added)
        return added

    # -------------------------------------------------------------- stats

    def stats(self) -> dict:
        with self._lock:
            targets = list(self._targets.values())
            verdicts = dict(self._last_verdicts)
            swaps = self._swaps
        return {
            "running": self._thread is not None and self._thread.is_alive(),
            "interval_s": self.interval_s,
            "watched": sorted(t.database_id for t in targets),
            "swaps": swaps,
            "last_verdicts": verdicts,
            "versions": {
                t.database_id: self.registry.version(t.registry_key)
                for t in targets
            },
            "corpus_examples": self.corpus.written if self.corpus else None,
        }
