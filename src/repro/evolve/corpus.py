"""Dynamic Q->SQL corpus growth from the live schema.

ValueNet's premise is *learning from database information*; this module
closes the loop from "the schema changed" to "new training/eval examples
exist".  Given a (freshly introspected) database it derives question/SQL
pairs per table and column — row counts, DISTINCT projections, GROUP BY
counts, numeric aggregations, top-k rankings, and value filters seeded
from sampled base data.

Two properties distinguish it from string-template generators (compare
SNIPPETS.md snippet 1):

* every SQL string is **rendered through the repro.sql AST** — patterns
  build :class:`~repro.sql.ast.SelectQuery` trees and render them with
  :func:`~repro.sql.render.render_sql` against the schema graph, so
  quoting, aliasing, and dialect rules are the system's own, and every
  generated pair is parseable by the same subset grammar the model
  emits;
* every example is **validated before it is emitted** — through the
  policy engine (when one is configured) and the budgeted executor, so
  an example that would be blocked or fails to execute never enters the
  corpus.

:class:`CorpusWriter` appends examples incrementally to a JSONL file
with cross-run dedup by ``(database_id, sql)``; the background refresher
emits only the tables named by a drift report, so a schema change yields
exactly the new examples it enables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.concurrency import make_lock
from repro.db.database import Database
from repro.db.executor import execute_with_budget
from repro.schema.graph import SchemaGraph
from repro.schema.model import Column, ColumnType, Table
from repro.sql.ast import (
    AggregateFunction,
    ColumnRef,
    Condition,
    Literal,
    Operator,
    OrderBy,
    OrderDirection,
    Query,
    SelectItem,
    SelectQuery,
)
from repro.sql.render import render_sql

# Sampled literal values per column used to seed value-filter examples.
DEFAULT_VALUE_EXAMPLES = 3
# Wall-clock budget / row cap for validating one generated example.
VALIDATION_TIMEOUT_S = 5.0
VALIDATION_MAX_ROWS = 10_000


@dataclass(frozen=True)
class CorpusExample:
    """One generated question/SQL pair, tagged with its provenance."""

    question: str
    sql: str
    database_id: str
    table: str
    column: str | None
    kind: str  # row-count | distinct | distinct-count | group-count |
    #            sum | avg | top-k | value-filter
    validated: bool = False

    def as_dict(self) -> dict:
        return {
            "question": self.question,
            "sql": self.sql,
            "database_id": self.database_id,
            "table": self.table,
            "column": self.column,
            "kind": self.kind,
            "validated": self.validated,
        }


def _phrase(column: Column) -> str:
    """The natural-language surface form of a column for questions."""
    name = column.natural_name or column.name
    return name.replace("_", " ").strip() or column.name


def _table_phrase(table: Table) -> str:
    return table.name.replace("_", " ").strip() or table.name


def _single(
    table: str,
    items: list[SelectItem],
    *,
    distinct=False,
    where=None,
    group_by=None,
    order_by=None,
    limit=None,
) -> Query:
    return Query(
        body=SelectQuery(
            select=items,
            tables=[table],
            distinct=distinct,
            where=where,
            group_by=list(group_by or []),
            order_by=order_by,
            limit=limit,
        )
    )


def _column_patterns(table: Table, column: Column) -> list[tuple[str, str, Query]]:
    """(kind, question, AST) patterns for one column."""
    t, c = table.name, column.name
    tp, cp = _table_phrase(table), _phrase(column)
    ref = ColumnRef(t, c)
    patterns: list[tuple[str, str, Query]] = [
        (
            "distinct",
            f"what are the different {cp} values in {tp}?",
            # Query-level DISTINCT: SelectItem.distinct only renders
            # inside an aggregate (COUNT(DISTINCT ...)).
            _single(t, [SelectItem(ref)], distinct=True),
        ),
        (
            "distinct-count",
            f"how many distinct {cp} are there in {tp}?",
            _single(
                t,
                [SelectItem(ref, AggregateFunction.COUNT, distinct=True)],
            ),
        ),
        (
            "group-count",
            f"how many rows are there for each {cp} in {tp}?",
            _single(
                t,
                [SelectItem(ref), SelectItem(ColumnRef(None, "*"),
                                             AggregateFunction.COUNT)],
                group_by=[ref],
            ),
        ),
    ]
    if column.column_type is ColumnType.NUMBER:
        patterns.append(
            (
                "sum",
                f"what is the total {cp} in {tp}?",
                _single(t, [SelectItem(ref, AggregateFunction.SUM)]),
            )
        )
        patterns.append(
            (
                "avg",
                f"what is the average {cp} in {tp}?",
                _single(t, [SelectItem(ref, AggregateFunction.AVG)]),
            )
        )
        group_columns = [
            other
            for other in table.columns
            if other.name != c and other.column_type is ColumnType.TEXT
        ]
        if group_columns:
            other = group_columns[0]
            patterns.append(
                (
                    "top-k",
                    f"which {_phrase(other)} have the top 10 total {cp} "
                    f"in {tp}?",
                    _single(
                        t,
                        [
                            SelectItem(ColumnRef(t, other.name)),
                            SelectItem(ref, AggregateFunction.SUM),
                        ],
                        group_by=[ColumnRef(t, other.name)],
                        order_by=OrderBy(
                            (SelectItem(ref, AggregateFunction.SUM),),
                            OrderDirection.DESC,
                        ),
                        limit=10,
                    ),
                )
            )
    return patterns


def _value_patterns(
    database: Database,
    table: Table,
    column: Column,
    *,
    max_value_examples: int,
) -> list[tuple[str, str, Query]]:
    """Value-filter patterns seeded from sampled base data."""
    if column.column_type is not ColumnType.TEXT or max_value_examples <= 0:
        return []
    t, c = table.name, column.name
    patterns: list[tuple[str, str, Query]] = []
    seen: set[str] = set()
    for value in database.column_values(column, limit=64):
        if len(patterns) >= max_value_examples:
            break
        text = str(value).strip()
        lowered = text.lower()
        if not (2 <= len(text) <= 40) or lowered in seen:
            continue
        seen.add(lowered)
        patterns.append(
            (
                "value-filter",
                f"show the rows of {_table_phrase(table)} whose "
                f"{_phrase(column)} is {text}",
                _single(
                    t,
                    [SelectItem(ColumnRef(None, "*"))],
                    where=Condition(ColumnRef(t, c), Operator.EQ,
                                    Literal(text)),
                ),
            )
        )
    return patterns


def generate_examples(
    database: Database,
    *,
    database_id: str | None = None,
    tables: list[str] | None = None,
    policy=None,
    validate: bool = True,
    max_value_examples: int = DEFAULT_VALUE_EXAMPLES,
) -> list[CorpusExample]:
    """Derive Q->SQL examples from ``database``'s live schema and data.

    Args:
        database: the database to derive from.  Pass a *freshly opened*
            :class:`Database` after DDL so the introspected schema
            includes new tables/columns.
        database_id: external id stamped on examples (defaults to the
            schema name).
        tables: restrict generation to these table names (the refresher
            passes a drift report's touched tables for incremental
            growth); ``None`` generates for every table.
        policy: optional :class:`~repro.policy.engine.PolicyEngine`;
            examples its rules block are dropped.
        validate: execute every candidate under the budgeted executor
            and drop the ones that fail.  Emitted examples carry
            ``validated=True`` only when this ran.
        max_value_examples: value-filter examples per text column.
    """
    db_id = database_id or database.schema.name
    graph = SchemaGraph(database.schema)
    wanted = None if tables is None else {name.lower() for name in tables}
    examples: list[CorpusExample] = []
    for table in database.schema.tables:
        if wanted is not None and table.name.lower() not in wanted:
            continue
        patterns: list[tuple[str, str, Query, str | None]] = [
            (
                "row-count",
                f"how many rows are in {_table_phrase(table)}?",
                _single(
                    table.name,
                    [SelectItem(ColumnRef(None, "*"), AggregateFunction.COUNT)],
                ),
                None,
            )
        ]
        for column in table.columns:
            for kind, question, query in _column_patterns(table, column):
                patterns.append((kind, question, query, column.name))
            for kind, question, query in _value_patterns(
                database, table, column, max_value_examples=max_value_examples
            ):
                patterns.append((kind, question, query, column.name))
        for kind, question, query, column_name in patterns:
            sql = render_sql(query, graph)
            if not _admissible(database, db_id, sql, policy, validate):
                continue
            examples.append(
                CorpusExample(
                    question=question,
                    sql=sql,
                    database_id=db_id,
                    table=table.name,
                    column=column_name,
                    kind=kind,
                    validated=validate,
                )
            )
    return examples


def _admissible(
    database: Database, db_id: str, sql: str, policy, validate: bool
) -> bool:
    """Policy + execution gate for one candidate example."""
    if policy is not None:
        try:
            policy.check_sql(sql, database_id=db_id, schema=database.schema)
        except Exception:  # justified: blocked/unparseable examples are dropped, not emitted
            return False
    if validate:
        try:
            execute_with_budget(
                database,
                sql,
                timeout_s=VALIDATION_TIMEOUT_S,
                max_rows=VALIDATION_MAX_ROWS,
            )
        except Exception:  # justified: an example that cannot execute must not enter the corpus
            return False
    return True


class CorpusWriter:
    """Incremental JSONL corpus sink with cross-run dedup.

    Examples are appended one JSON object per line; the writer loads the
    existing file's ``(database_id, sql)`` keys at construction so
    repeated polls (or restarts) never duplicate an example.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = make_lock("CorpusWriter._lock")
        self._seen: set[tuple[str, str]] = set()  # guarded by: _lock
        self.written = 0  # guarded by: _lock
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # a torn tail line never poisons dedup
                    self._seen.add(
                        (payload.get("database_id", ""), payload.get("sql", ""))
                    )

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)

    def append(self, examples: list[CorpusExample]) -> int:
        """Append the not-yet-seen examples; returns how many were new."""
        with self._lock:
            fresh = [
                example
                for example in examples
                if (example.database_id, example.sql) not in self._seen
            ]
            if not fresh:
                return 0
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a", encoding="utf-8") as handle:
                for example in fresh:
                    handle.write(json.dumps(example.as_dict()) + "\n")
                    self._seen.add((example.database_id, example.sql))
            self.written += len(fresh)
            return len(fresh)
