"""Drift detection for live databases: cheap + deep content fingerprints.

The :class:`~repro.index.registry.IndexRegistry` keys entries by a cheap
fingerprint (schema shape + per-table row counts), which misses exactly
one class of change: in-place UPDATEs that keep every row count
identical.  The :class:`SchemaWatcher` closes that hole with a *deep*
fingerprint built from three layers, cheapest first:

1. **connection-level change counters** — ``PRAGMA data_version`` (bumps
   whenever *another* connection commits, WAL-safe) and ``PRAGMA
   schema_version`` (bumps on DDL).  When neither moved since the last
   poll the database cannot have changed and the deep scan is skipped
   entirely; a no-op poll costs two PRAGMA statements.
2. **schema snapshot** — the ``sqlite_master`` DDL text plus per-table
   column names/types, so any DDL (new table, new/renamed column) is
   classified as :attr:`DriftVerdict.SCHEMA_CHANGED` with the added /
   removed tables and columns named in the report.
3. **content snapshot** — per-table row count plus a sampled value hash
   over up to ``sample_rows`` rows in ``rowid`` order (unordered for
   WITHOUT ROWID tables).  A count-preserving UPDATE inside the sample
   window changes the hash and is classified as
   :attr:`DriftVerdict.CONTENT_CHANGED`; tables larger than the window
   are still covered by layer 1 (any commit bumps ``data_version``, and
   the watcher only reports UNCHANGED when layer 1 is quiet).

The watcher is a reusable probe: the background refresher
(:mod:`repro.evolve.refresher`) polls it off the request path, tests
drive it directly, and :func:`deep_fingerprint` gives one-shot callers
the combined digest without watcher state.
"""

from __future__ import annotations

import enum
import hashlib
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.db.database import Database

# Rows hashed per table for the content layer.  Beyond this window the
# data_version fast path still detects that *something* committed; the
# sample bound keeps a poll's cost independent of table size.
DEFAULT_SAMPLE_ROWS = 4096


class DriftVerdict(enum.Enum):
    """What one poll concluded about the watched database."""

    UNCHANGED = "unchanged"
    CONTENT_CHANGED = "content_changed"
    SCHEMA_CHANGED = "schema_changed"


@dataclass(frozen=True)
class TableSnapshot:
    """Shape + sampled content of one table at poll time."""

    name: str
    columns: tuple[tuple[str, str], ...]  # (name, declared type)
    row_count: int
    content_hash: str


@dataclass(frozen=True)
class DatabaseSnapshot:
    """Everything one probe observed (comparable across polls)."""

    schema_hash: str
    tables: tuple[TableSnapshot, ...]
    data_version: int
    schema_version: int

    def table(self, name: str) -> TableSnapshot | None:
        for snap in self.tables:
            if snap.name == name:
                return snap
        return None

    @property
    def deep_fingerprint(self) -> str:
        """One digest over schema shape and sampled content."""
        digest = hashlib.sha256()
        digest.update(self.schema_hash.encode())
        for snap in self.tables:
            digest.update(b"\x00" + snap.name.encode())
            digest.update(str(snap.row_count).encode())
            digest.update(snap.content_hash.encode())
        return digest.hexdigest()


@dataclass(frozen=True)
class DriftReport:
    """The verdict of one poll plus the structured diff behind it."""

    verdict: DriftVerdict
    tables_added: tuple[str, ...] = ()
    tables_removed: tuple[str, ...] = ()
    tables_changed: tuple[str, ...] = ()     # content drift
    columns_added: tuple[tuple[str, str], ...] = ()  # (table, column)
    snapshot: DatabaseSnapshot | None = None

    @property
    def changed(self) -> bool:
        return self.verdict is not DriftVerdict.UNCHANGED

    @property
    def touched_tables(self) -> tuple[str, ...]:
        """Every table named by the diff (for incremental corpus growth)."""
        seen: dict[str, None] = {}
        for name in self.tables_added:
            seen.setdefault(name)
        for name in self.tables_changed:
            seen.setdefault(name)
        for table, _column in self.columns_added:
            seen.setdefault(table)
        return tuple(seen)

    def as_dict(self) -> dict:
        return {
            "verdict": self.verdict.value,
            "tables_added": list(self.tables_added),
            "tables_removed": list(self.tables_removed),
            "tables_changed": list(self.tables_changed),
            "columns_added": [list(pair) for pair in self.columns_added],
        }


# ------------------------------------------------------------------ probing


def _table_names(connection: sqlite3.Connection) -> list[tuple[str, str]]:
    rows = connection.execute(
        "SELECT name, COALESCE(sql, '') FROM sqlite_master "
        "WHERE type = 'table' AND name NOT LIKE 'sqlite_%' ORDER BY name"
    ).fetchall()
    return [(str(name), str(sql)) for name, sql in rows]


# taint: trusted (table names come from sqlite_master of the polled file and are identifier-escaped before interpolation)
def _table_snapshot(
    connection: sqlite3.Connection, name: str, sample_rows: int
) -> TableSnapshot:
    # The name originates in the watched file's own sqlite_master, but a
    # hostile file could still carry a quote in a table name — escape it
    # so it cannot break out of the quoted identifier.
    quoted = name.replace('"', '""')
    columns = tuple(
        (str(row[1]), str(row[2]))
        for row in connection.execute(f'PRAGMA table_info("{quoted}")')
    )
    try:
        row_count = int(
            connection.execute(f'SELECT COUNT(*) FROM "{quoted}"').fetchone()[0]
        )
    except sqlite3.Error:
        # A table racing its own DROP fingerprints as absent content; the
        # next poll sees the settled state.
        return TableSnapshot(name, columns, -1, "")
    digest = hashlib.sha256()
    try:
        cursor = connection.execute(
            f'SELECT * FROM "{quoted}" ORDER BY rowid LIMIT {int(sample_rows)}'
        )
    except sqlite3.Error:
        # WITHOUT ROWID tables: scan order is the primary key, which is
        # equally deterministic for an unchanged table.
        cursor = connection.execute(
            f'SELECT * FROM "{quoted}" LIMIT {int(sample_rows)}'
        )
    for row in cursor:
        for value in row:
            digest.update(b"\x1f" + repr(value).encode("utf-8", "replace"))
        digest.update(b"\x1e")
    return TableSnapshot(name, columns, row_count, digest.hexdigest())


def snapshot_connection(
    connection: sqlite3.Connection, *, sample_rows: int = DEFAULT_SAMPLE_ROWS
) -> DatabaseSnapshot:
    """Probe one connection into a comparable :class:`DatabaseSnapshot`."""
    data_version = int(connection.execute("PRAGMA data_version").fetchone()[0])
    schema_version = int(
        connection.execute("PRAGMA schema_version").fetchone()[0]
    )
    names = _table_names(connection)
    schema_digest = hashlib.sha256()
    tables = []
    for name, sql in names:
        schema_digest.update(b"\x00" + name.encode() + b"\x01" + sql.encode())
        tables.append(_table_snapshot(connection, name, sample_rows))
    for snap in tables:
        schema_digest.update(
            b"\x02" + repr(snap.columns).encode("utf-8", "replace")
        )
    return DatabaseSnapshot(
        schema_hash=schema_digest.hexdigest(),
        tables=tuple(tables),
        data_version=data_version,
        schema_version=schema_version,
    )


def deep_fingerprint(
    database: Database, *, sample_rows: int = DEFAULT_SAMPLE_ROWS
) -> str:
    """One-shot deep content fingerprint of a :class:`Database`.

    Unlike :func:`repro.index.registry.database_fingerprint` this catches
    count-preserving UPDATEs (within the sample window) because it hashes
    sampled values, not just row counts.
    """
    return snapshot_connection(
        database.connection, sample_rows=sample_rows
    ).deep_fingerprint


def _diff(
    previous: DatabaseSnapshot, current: DatabaseSnapshot
) -> DriftReport:
    prev_tables = {snap.name: snap for snap in previous.tables}
    cur_tables = {snap.name: snap for snap in current.tables}
    added = tuple(sorted(set(cur_tables) - set(prev_tables)))
    removed = tuple(sorted(set(prev_tables) - set(cur_tables)))
    columns_added: list[tuple[str, str]] = []
    shape_changed = False
    content_changed: list[str] = []
    for name in sorted(set(prev_tables) & set(cur_tables)):
        prev, cur = prev_tables[name], cur_tables[name]
        if prev.columns != cur.columns:
            shape_changed = True
            prev_cols = {col for col, _ in prev.columns}
            for col, _type in cur.columns:
                if col not in prev_cols:
                    columns_added.append((name, col))
        if prev.row_count != cur.row_count or prev.content_hash != cur.content_hash:
            content_changed.append(name)
    if added or removed or shape_changed or (
        previous.schema_hash != current.schema_hash
    ):
        verdict = DriftVerdict.SCHEMA_CHANGED
    elif content_changed:
        verdict = DriftVerdict.CONTENT_CHANGED
    else:
        verdict = DriftVerdict.UNCHANGED
    return DriftReport(
        verdict=verdict,
        tables_added=added,
        tables_removed=removed,
        tables_changed=tuple(content_changed),
        columns_added=tuple(columns_added),
        snapshot=current,
    )


class SchemaWatcher:
    """Stateful drift probe for one database.

    Args:
        target: a SQLite file path (preferred — the watcher opens its own
            read-only connection, safe to poll from any thread) or an
            in-process :class:`Database` (polled through its per-thread
            connection; poll from one thread for in-memory databases,
            whose cross-thread clones are frozen snapshots).
        sample_rows: per-table content-hash window (see module docs).

    The constructor takes the baseline snapshot, so the first
    :meth:`poll` of an untouched database reports ``UNCHANGED``.
    """

    def __init__(
        self,
        target: str | Path | Database,
        *,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
    ):
        self._sample_rows = sample_rows
        self._database: Database | None = None
        self._path: str | None = None
        self._connection: sqlite3.Connection | None = None
        if isinstance(target, Database):
            self._database = target
        else:
            self._path = str(target)
        self._previous = snapshot_connection(
            self._connect(), sample_rows=sample_rows
        )

    def _connect(self) -> sqlite3.Connection:
        if self._database is not None:
            return self._database.connection
        if self._connection is None:
            # A dedicated read-only connection: data_version then reports
            # every commit made by the serving/writer connections, and
            # the watcher can never write.
            self._connection = sqlite3.connect(
                f"file:{self._path}?mode=ro",
                uri=True,
                check_same_thread=False,
            )
        return self._connection

    @property
    def baseline(self) -> DatabaseSnapshot:
        return self._previous

    def poll(self, *, force_deep: bool = False) -> DriftReport:
        """Probe the database and compare against the previous snapshot.

        The cheap layer (``data_version`` + ``schema_version``) short-
        circuits untouched databases; ``force_deep`` always runs the full
        snapshot (used by tests and the first poll after a swap).
        """
        connection = self._connect()
        # The counter fast path is only sound on the watcher's own
        # read-only connection: data_version never bumps for commits made
        # through the probed connection itself, so Database targets
        # (tests, in-memory) always take the deep scan.
        if not force_deep and self._database is None:
            data_version = int(
                connection.execute("PRAGMA data_version").fetchone()[0]
            )
            schema_version = int(
                connection.execute("PRAGMA schema_version").fetchone()[0]
            )
            if (
                data_version == self._previous.data_version
                and schema_version == self._previous.schema_version
            ):
                return DriftReport(
                    DriftVerdict.UNCHANGED, snapshot=self._previous
                )
        current = snapshot_connection(
            connection, sample_rows=self._sample_rows
        )
        report = _diff(self._previous, current)
        self._previous = current
        return report

    def close(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
            self._connection = None
