"""Concurrency primitives: lock factories and retry backoff.

Library modules build their locks through :func:`make_lock` /
:func:`make_rlock` instead of calling ``threading.Lock()`` directly.
In normal runs these return the raw ``threading`` primitives — zero
overhead, zero extra imports.  With ``REPRO_SANITIZE=1`` in the
environment they return the instrumented
:class:`~repro.analysis.lockorder.SanitizedLock`, which records
per-thread held→acquired orderings and raises
:class:`~repro.analysis.lockorder.LockOrderError` on any acquisition
that closes a cycle (a potential deadlock), with both acquisition
stacks in the report.

The ``name`` argument ("Class._lock") exists purely for those reports;
pick names a reader can map back to the field.
"""

from __future__ import annotations

import os
import threading


def sanitize_enabled() -> bool:
    """True when the lock-order sanitizer is switched on via env."""
    return os.environ.get("REPRO_SANITIZE", "") == "1"


def make_lock(name: str):
    """A mutex; instrumented when ``REPRO_SANITIZE=1``."""
    if sanitize_enabled():
        from repro.analysis.lockorder import SanitizedLock

        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str):
    """A reentrant mutex; instrumented when ``REPRO_SANITIZE=1``."""
    if sanitize_enabled():
        from repro.analysis.lockorder import SanitizedLock

        return SanitizedLock(name, reentrant=True)
    return threading.RLock()


class ExponentialBackoff:
    """Restart delay schedule: ``initial * factor**n`` capped at ``max_delay``."""

    def __init__(
        self,
        *,
        initial: float = 0.25,
        factor: float = 2.0,
        max_delay: float = 10.0,
    ):
        if initial <= 0 or factor < 1.0 or max_delay < initial:
            raise ValueError("need initial > 0, factor >= 1, max_delay >= initial")
        self.initial = initial
        self.factor = factor
        self.max_delay = max_delay
        self._attempts = 0

    def next_delay(self) -> float:
        delay = min(self.max_delay, self.initial * (self.factor ** self._attempts))
        self._attempts += 1
        return delay

    def reset(self) -> None:
        self._attempts = 0

    @property
    def attempts(self) -> int:
        return self._attempts
