"""Versioned on-disk serialization for the per-database value indexes.

Cold-building an :class:`~repro.index.inverted.InvertedIndex` plus its
:class:`~repro.index.similarity.SimilaritySearcher` means scanning every
text column *and* deriving q-gram posting lists for every distinct value —
by far the most expensive part of opening a database for translation.
This module persists both as one bundle so benchmarks, ``repro serve``
and eval scripts skip the rebuild entirely on warm start.

The bundle is a pickle of plain builtin structures (dicts, lists, tuples,
strings, flat ``array`` buffers — produced by the ``state_dict`` methods,
never live domain objects)
wrapped in a header carrying a format version and the database content
fingerprint.  A mismatch on either — or any parse failure — makes
:func:`load_bundle` return ``None`` so callers fall back to a cold build;
a stale or corrupt cache can cost time but never correctness.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path

from repro.index.inverted import InvertedIndex
from repro.index.similarity import SimilaritySearcher

#: Bump whenever the state_dict layout of the index, the searcher, or the
#: blocked pool changes; old files are then rebuilt instead of misread.
FORMAT_VERSION = 1

_MAGIC = "repro-index-bundle"


def save_bundle(
    path: str | Path,
    *,
    fingerprint: str,
    index: InvertedIndex,
    searcher: SimilaritySearcher,
) -> None:
    """Atomically write ``index`` + ``searcher`` to ``path``.

    The write goes through a same-directory temp file + ``os.replace`` so
    concurrent readers never observe a torn bundle.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "magic": _MAGIC,
        "format_version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "index": index.state_dict(),
        "searcher": searcher.state_dict(),
    }
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_bundle(
    path: str | Path, *, fingerprint: str
) -> tuple[InvertedIndex, SimilaritySearcher] | None:
    """Load a bundle written by :func:`save_bundle`.

    Returns ``None`` when the file is missing, unreadable, from another
    format version, or fingerprinted for different database content — the
    caller then rebuilds from base data.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
        return None
    if not isinstance(payload, dict) or payload.get("magic") != _MAGIC:
        return None
    if payload.get("format_version") != FORMAT_VERSION:
        return None
    if payload.get("fingerprint") != fingerprint:
        return None
    try:
        index = InvertedIndex.from_state(payload["index"])
        searcher = SimilaritySearcher.from_state(index, payload["searcher"])
    except (KeyError, TypeError, ValueError):
        return None
    return index, searcher
