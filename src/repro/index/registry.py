"""Process-wide registry of per-database value indexes.

Before this layer existed every :class:`~repro.preprocessing.pipeline.Preprocessor`
cold-built its own :class:`~repro.index.inverted.InvertedIndex` and
:class:`~repro.index.similarity.SimilaritySearcher` — the serving layer
ended up with multiple copies per database (runtime, pipeline, fallback),
and every benchmark or eval script paid the full scan again.  The
registry makes the pair a shared, keyed resource:

* **keying** — database id + a cheap content fingerprint (schema shape
  plus per-table row counts); a fingerprint change (new rows, new
  columns) transparently triggers a rebuild, so shared entries are never
  silently stale across content changes that alter the row counts;
* **thread safety** — one build per key even under concurrent first use
  (per-key build locks; readers never block builders of other keys);
* **persistence** — with a ``cache_dir`` the registry saves every cold
  build through :mod:`repro.index.persistence` and warm-loads it next
  time, skipping both the column scans and the q-gram derivation;
* **accounting** — ``build_count`` / ``load_count`` / ``hit_count`` let
  tests assert "exactly one index per database" instead of hoping.

``get_default_registry`` returns the process-wide instance used whenever
a :class:`Preprocessor` is built without an explicit index; tests can
swap it with ``set_default_registry`` to observe accounting in isolation.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.concurrency import make_lock
from repro.db.database import Database
from repro.index.inverted import InvertedIndex
from repro.index.persistence import load_bundle, save_bundle
from repro.index.similarity import SimilaritySearcher


# taint: trusted (COUNT targets are quoted identifiers from the database's own Schema object)
def database_fingerprint(database: Database) -> str:
    """Cheap content fingerprint: schema shape + per-table row counts.

    Deliberately avoids scanning base data (that is what the index build
    itself does); in-place updates that keep every row count identical are
    not detected — callers mutating content that way should invalidate
    the registry entry explicitly.
    """
    digest = hashlib.sha256()
    digest.update(database.schema.name.encode())
    for table in database.schema.tables:
        digest.update(b"\x00" + table.name.encode())
        for column in table.columns:
            digest.update(
                b"\x01" + column.name.encode() + column.column_type.name.encode()
            )
        try:
            rows = database.execute(f'SELECT COUNT(*) FROM "{table.name}"')
            count = int(rows[0][0]) if rows else 0
        except Exception:  # justified: table missing on disk is fingerprinted as -1
            count = -1
        digest.update(b"\x02" + str(count).encode())
    return digest.hexdigest()


@dataclass
class IndexEntry:
    """One shared per-database index bundle."""

    database_id: str
    fingerprint: str
    index: InvertedIndex
    searcher: SimilaritySearcher
    source: str  # "built" | "disk"


class IndexRegistry:
    """Shared, thread-safe, optionally disk-backed index store."""

    def __init__(self, *, cache_dir: str | Path | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._entries: dict[str, IndexEntry] = {}  # guarded by: _lock
        self._key_locks: dict[str, object] = {}  # guarded by: _lock
        self._versions: dict[str, int] = {}  # guarded by: _lock
        self._refreshing: set[str] = set()  # guarded by: _lock
        self._lock = make_lock("IndexRegistry._lock")
        self.build_count = 0  # guarded by: _lock
        self.load_count = 0  # guarded by: _lock
        self.hit_count = 0  # guarded by: _lock
        self.swap_count = 0  # guarded by: _lock
        self.stale_hit_count = 0  # guarded by: _lock

    # --------------------------------------------------------------- core

    def get(self, database: Database, *, database_id: str | None = None) -> IndexEntry:
        """The shared entry for ``database``, building or loading on miss.

        When a background refresher has claimed the key (see
        :meth:`mark_background_refresh`) a stale fingerprint does NOT
        trigger an on-path rebuild: the old entry is served and the
        refresher's swap delivers the fresh one — no request ever blocks
        on a rebuild once a refresher is running.
        """
        db_id = database_id if database_id is not None else database.schema.name
        fingerprint = database_fingerprint(database)
        with self._lock:
            entry = self._entries.get(db_id)
            if entry is not None and entry.fingerprint == fingerprint:
                self.hit_count += 1
                return entry
            if entry is not None and db_id in self._refreshing:
                self.stale_hit_count += 1
                return entry
            key_lock = self._key_locks.setdefault(
                db_id, make_lock(f"IndexRegistry.key[{db_id}]")
            )
        with key_lock:
            with self._lock:
                entry = self._entries.get(db_id)
                if entry is not None and entry.fingerprint == fingerprint:
                    self.hit_count += 1
                    return entry
                if entry is not None and db_id in self._refreshing:
                    self.stale_hit_count += 1
                    return entry
            entry = self._load_or_build(database, db_id, fingerprint)
            with self._lock:
                self._entries[db_id] = entry
                self._versions[db_id] = self._versions.get(db_id, 0) + 1
            return entry

    def _cache_path(self, db_id: str) -> Path:
        assert self.cache_dir is not None
        # db ids come from schema names / CLI labels; keep the path safe.
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in db_id)
        return self.cache_dir / f"{safe}.index"

    def _load_or_build(
        self, database: Database, db_id: str, fingerprint: str
    ) -> IndexEntry:
        if self.cache_dir is not None:
            loaded = load_bundle(self._cache_path(db_id), fingerprint=fingerprint)
            if loaded is not None:
                index, searcher = loaded
                with self._lock:
                    self.load_count += 1
                return IndexEntry(db_id, fingerprint, index, searcher, "disk")
        index = InvertedIndex.build(database)
        searcher = SimilaritySearcher(index)
        with self._lock:
            self.build_count += 1
        if self.cache_dir is not None:
            save_bundle(
                self._cache_path(db_id),
                fingerprint=fingerprint,
                index=index,
                searcher=searcher,
            )
        return IndexEntry(db_id, fingerprint, index, searcher, "built")

    # ---------------------------------------------------------- lifecycle

    def warm(
        self,
        databases: dict[str, Database] | list[Database],
        *,
        max_workers: int | None = None,
        only: set[str] | None = None,
    ) -> list[IndexEntry]:
        """Build (or load) entries for many databases on a thread pool.

        Index building releases the GIL inside SQLite scans, so parallel
        cold builds overlap I/O even on CPython.

        ``only`` restricts warming to that subset of database ids — a
        cluster worker hosting every database but *owning* one shard
        warms only its shard eagerly and builds the rest lazily if it
        ever receives failover traffic for them.
        """
        if isinstance(databases, dict):
            items = list(databases.items())
        else:
            items = [(db.schema.name, db) for db in databases]
        if only is not None:
            items = [(db_id, db) for db_id, db in items if db_id in only]
        if not items:
            return []
        workers = max_workers if max_workers is not None else min(8, len(items))
        with ThreadPoolExecutor(max_workers=max(1, workers)) as executor:
            futures = [
                executor.submit(self.get, database, database_id=db_id)
                for db_id, database in items
            ]
            return [future.result() for future in futures]

    def invalidate(self, database_id: str | None = None) -> None:
        """Drop one entry (or all) so the next ``get`` rebuilds."""
        with self._lock:
            if database_id is None:
                self._entries.clear()
            else:
                self._entries.pop(database_id, None)

    def swap(self, entry: IndexEntry) -> int:
        """Atomically publish a background-built entry; returns its version.

        This is the zero-downtime half of the refresh protocol: the
        builder did all its work off-path, so publishing is a single
        dictionary assignment under the registry lock.  Readers either
        see the old bundle or the new one, never a partial state.
        """
        with self._lock:
            self._entries[entry.database_id] = entry
            version = self._versions.get(entry.database_id, 0) + 1
            self._versions[entry.database_id] = version
            self.swap_count += 1
            return version

    def version(self, database_id: str) -> int:
        """How many times this key's entry has been (re)built or swapped."""
        with self._lock:
            return self._versions.get(database_id, 0)

    def mark_background_refresh(self, database_id: str, active: bool = True) -> None:
        """Arm (or disarm) stale-serving for a key a refresher owns."""
        with self._lock:
            if active:
                self._refreshing.add(database_id)
            else:
                self._refreshing.discard(database_id)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "build_count": self.build_count,
                "load_count": self.load_count,
                "hit_count": self.hit_count,
                "swap_count": self.swap_count,
                "stale_hit_count": self.stale_hit_count,
                "versions": dict(self._versions),
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_default_registry = IndexRegistry()  # guarded by: _default_lock
_default_lock = make_lock("index.registry._default_lock")


def get_default_registry() -> IndexRegistry:
    """The process-wide registry shared by all default-constructed
    preprocessors, pipelines, and serving runtimes."""
    with _default_lock:
        return _default_registry


def set_default_registry(registry: IndexRegistry) -> IndexRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
