"""Inverted index, blocking, similarity search, and the shared registry
over database content."""

from repro.index.blocking import BlockedValuePool
from repro.index.inverted import InvertedIndex, ValueLocation, normalize_value
from repro.index.persistence import FORMAT_VERSION, load_bundle, save_bundle
from repro.index.registry import (
    IndexEntry,
    IndexRegistry,
    database_fingerprint,
    get_default_registry,
    set_default_registry,
)
from repro.index.similarity import SearchStats, SimilaritySearcher, SimilarValue

__all__ = [
    "BlockedValuePool",
    "FORMAT_VERSION",
    "IndexEntry",
    "IndexRegistry",
    "InvertedIndex",
    "SearchStats",
    "SimilaritySearcher",
    "SimilarValue",
    "ValueLocation",
    "database_fingerprint",
    "get_default_registry",
    "load_bundle",
    "normalize_value",
    "save_bundle",
    "set_default_registry",
]
