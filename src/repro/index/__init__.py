"""Inverted index, blocking and similarity search over database content."""

from repro.index.blocking import BlockedValuePool
from repro.index.inverted import InvertedIndex, ValueLocation, normalize_value
from repro.index.similarity import SimilaritySearcher, SimilarValue

__all__ = [
    "BlockedValuePool",
    "InvertedIndex",
    "SimilaritySearcher",
    "SimilarValue",
    "ValueLocation",
    "normalize_value",
]
