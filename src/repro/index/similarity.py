"""Similarity search over indexed database values.

Implements the paper's first candidate-generation method (Section IV-B2):
scan the database for values whose Damerau-Levenshtein distance to a query
span is below a threshold.  Table II shows this value lookup dominating
translation time, so the scan is aggressively sub-linear:

* one **global pool** of distinct (case-folded) strings — a value like
  "USA" that appears in twenty columns is scored once per query, and the
  result fans back out to every :class:`ValueLocation`;
* **q-gram blocking** (:mod:`repro.index.blocking`) rejects nearly every
  non-match without running the distance DP;
* the surviving candidates run the **Ukkonen-banded** O(k·n) kernel
  (:func:`repro.text.distance.damerau_levenshtein_banded`);
* an **LRU memo** on the (query, distance-bound) pair absorbs the heavy
  repetition produced by n-gram span expansion within and across
  questions.

The fan-out data (original spellings and locations per pooled string) is
held in flat parallel arrays indexed by pool position — compact in
memory, and a warm load (:meth:`SimilaritySearcher.from_state`) adopts
the arrays without any per-value rebuild.

The searcher tracks its own :class:`SearchStats` (DP calls, cache
traffic, wall time) and notifies registered observers after every search
so the serving layer can export the numbers without reaching into
internals.
"""

from __future__ import annotations

import time
from array import array
from collections import OrderedDict
from dataclasses import dataclass

from repro.concurrency import make_lock
from repro.index.blocking import BlockedValuePool
from repro.index.inverted import InvertedIndex, ValueLocation
from repro.text.distance import damerau_levenshtein_banded


@dataclass(frozen=True)
class SimilarValue:
    """One similar database value with its location and distance."""

    value: str
    location: ValueLocation
    distance: int

    @property
    def similarity(self) -> float:
        """Normalized similarity in (0, 1]."""
        longest = max(len(self.value), 1)
        return 1.0 - self.distance / max(longest, self.distance, 1)


@dataclass
class SearchStats:
    """Counters for one searcher (guarded by the searcher's lock)."""

    searches: int = 0
    dp_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    pool_rebuilds: int = 0
    search_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "searches": self.searches,
            "dp_calls": self.dp_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "pool_rebuilds": self.pool_rebuilds,
            "search_seconds": self.search_seconds,
        }


class SimilaritySearcher:
    """Finds database values similar to a question span.

    One searcher is built per database (sharing the inverted index) and
    reused across questions and threads; construction builds the global
    blocked pool once, and the searcher transparently rebuilds it when
    the underlying index reports a newer :attr:`InvertedIndex.version`
    (values added after construction are therefore never invisible).
    """

    def __init__(self, index: InvertedIndex, *, cache_size: int = 2048):
        self._index = index
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[str, int], list[SimilarValue]] = OrderedDict()  # guarded by: _lock
        self._lock = make_lock("SimilaritySearcher._lock")
        self._observers: list = []  # guarded by: _lock
        self.stats = SearchStats()  # guarded by: _lock
        self._build_pool()

    # ------------------------------------------------------- pool building

    def _build_pool(self) -> None:
        """(Re)derive the global dedup pool from the index; lock-free, so
        callers must hold ``self._lock`` or be the constructor.

        Fan-out state per pool index ``i``: the ``(original, location)``
        pairs live at flat positions ``offsets[i]:offsets[i+1]`` of
        ``_originals`` / ``_location_ids``.
        """
        pool = BlockedValuePool()
        loc_table: list[ValueLocation] = []
        loc_ids: dict[ValueLocation, int] = {}
        position: dict[str, int] = {}
        per_value: list[list] = []  # [[original, lid, original, lid, ...]]
        for value, location in self._index.iter_text_values():
            lowered = value.lower()
            i = position.get(lowered)
            if i is None:
                i = len(per_value)
                position[lowered] = i
                per_value.append([])
                pool.add(lowered)
            lid = loc_ids.get(location)
            if lid is None:
                lid = len(loc_table)
                loc_ids[location] = lid
                loc_table.append(location)
            per_value[i] += (value, lid)
        offsets = array("I", [0])
        originals: list[str] = []
        location_ids = array("I")
        for flat in per_value:
            originals.extend(flat[0::2])
            location_ids.extend(flat[1::2])
            offsets.append(len(originals))
        self._pool = pool
        self._loc_table = loc_table
        self._offsets = offsets
        self._originals = originals
        self._location_ids = location_ids
        self._version = self._index.version

    # ------------------------------------------------------------- queries

    def search(
        self,
        query: str,
        *,
        max_distance: int = 2,
        max_results: int = 20,
    ) -> list[SimilarValue]:
        """All text values within ``max_distance`` of ``query``.

        Results are sorted by ascending distance, then value, and truncated
        to ``max_results`` (the paper observes that too many candidates
        hurt model accuracy, Section IV-B3).
        """
        start = time.perf_counter()
        lowered = query.lower()
        key = (lowered, max_distance)
        with self._lock:
            if self._version != self._index.version:
                self._build_pool()
                self._cache.clear()
                self.stats.pool_rebuilds += 1
            matches = self._cache.get(key)
            if matches is not None:
                self._cache.move_to_end(key)
                self.stats.cache_hits += 1
                cache_hit = True
            else:
                cache_hit = False
        if matches is None:
            matches, dp_calls = self._scan(lowered, max_distance)
            with self._lock:
                self.stats.cache_misses += 1
                self.stats.dp_calls += dp_calls
                self._cache[key] = matches
                self._cache.move_to_end(key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        elapsed = time.perf_counter() - start
        with self._lock:
            self.stats.searches += 1
            self.stats.search_seconds += elapsed
            observers = list(self._observers)
        for observer in observers:
            observer(elapsed, cache_hit)
        return matches[:max_results]

    def _scan(
        self, lowered: str, max_distance: int
    ) -> tuple[list[SimilarValue], int]:
        """Score each distinct pooled string once, fan out to locations.

        Reads the pool structures without the lock: they are replaced
        wholesale (never mutated) by :meth:`_build_pool`, so a concurrent
        rebuild cannot corrupt an in-flight scan.
        """
        pool = self._pool
        loc_table = self._loc_table
        offsets, originals = self._offsets, self._originals
        location_ids = self._location_ids
        matches: list[SimilarValue] = []
        dp_calls = 0
        for i in pool.candidate_indices(lowered, max_distance=max_distance):
            dp_calls += 1
            distance = damerau_levenshtein_banded(
                lowered, pool.value(i), max_distance=max_distance
            )
            if distance <= max_distance:
                for j in range(offsets[i], offsets[i + 1]):
                    matches.append(SimilarValue(
                        originals[j], loc_table[location_ids[j]], distance
                    ))
        matches.sort(key=lambda m: (m.distance, m.value.lower(), str(m.location)))
        return matches, dp_calls

    def best_match(self, query: str, *, max_distance: int = 2) -> SimilarValue | None:
        """The single closest value, or ``None`` when nothing is in range."""
        results = self.search(query, max_distance=max_distance, max_results=1)
        return results[0] if results else None

    # ------------------------------------------------------ observability

    def cache_info(self) -> dict:
        """Hit/miss counts and current size of the span memo."""
        with self._lock:
            return {
                "hits": self.stats.cache_hits,
                "misses": self.stats.cache_misses,
                "size": len(self._cache),
                "max_size": self._cache_size,
            }

    def stats_snapshot(self) -> dict:
        with self._lock:
            return self.stats.as_dict()

    def add_observer(self, observer) -> None:
        """Register ``observer(seconds, cache_hit)`` called after each search."""
        with self._lock:
            self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        with self._lock:
            if observer in self._observers:
                self._observers.remove(observer)

    # -------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Plain-structure snapshot (pool included, so a warm load skips
        the expensive q-gram derivation entirely).  Locations are
        flattened to ``(table, column)`` tuples so the payload survives
        refactors of :class:`ValueLocation` itself."""
        with self._lock:
            return {
                "loc_table": [(loc.table, loc.column) for loc in self._loc_table],
                "offsets": self._offsets,
                "originals": self._originals,
                "location_ids": self._location_ids,
                "pool": self._pool.state_dict(),
            }

    @classmethod
    def from_state(  # lint: disable=LOCK-GUARD (fresh instance; not shared until returned)
        cls, index: InvertedIndex, state: dict, *, cache_size: int = 2048
    ) -> "SimilaritySearcher":
        """Rebuild a searcher over ``index`` from :meth:`state_dict`."""
        searcher = cls.__new__(cls)
        searcher._index = index
        searcher._cache_size = cache_size
        searcher._cache = OrderedDict()
        searcher._lock = make_lock("SimilaritySearcher._lock")
        searcher._observers = []
        searcher.stats = SearchStats()
        searcher._loc_table = [
            ValueLocation(table, column) for table, column in state["loc_table"]
        ]
        searcher._offsets = array("I", state["offsets"])
        searcher._originals = list(state["originals"])
        searcher._location_ids = array("I", state["location_ids"])
        searcher._pool = BlockedValuePool.from_state(state["pool"])
        searcher._version = index.version
        return searcher
