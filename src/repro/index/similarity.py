"""Similarity search over indexed database values.

Implements the paper's first candidate-generation method (Section IV-B2):
scan the database for values whose Damerau-Levenshtein distance to a query
span is below a threshold.  Blocking (:mod:`repro.index.blocking`) keeps
the scan sub-linear in practice; the distance computation uses an
early-exit bound so far-off values are rejected cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.index.blocking import BlockedValuePool
from repro.index.inverted import InvertedIndex, ValueLocation
from repro.text.distance import damerau_levenshtein


@dataclass(frozen=True)
class SimilarValue:
    """One similar database value with its location and distance."""

    value: str
    location: ValueLocation
    distance: int

    @property
    def similarity(self) -> float:
        """Normalized similarity in (0, 1]."""
        longest = max(len(self.value), 1)
        return 1.0 - self.distance / max(longest, self.distance, 1)


class SimilaritySearcher:
    """Finds database values similar to a question span.

    One searcher is built per database (sharing the inverted index) and
    reused across questions; construction builds the per-column blocked
    pools once.
    """

    def __init__(self, index: InvertedIndex):
        self._index = index
        self._pools: dict[ValueLocation, BlockedValuePool] = {
            location: BlockedValuePool(index.values_in_column(location))
            for location in index.text_locations()
        }

    def search(
        self,
        query: str,
        *,
        max_distance: int = 2,
        max_results: int = 20,
    ) -> list[SimilarValue]:
        """All text values within ``max_distance`` of ``query``.

        Results are sorted by ascending distance, then value, and truncated
        to ``max_results`` (the paper observes that too many candidates
        hurt model accuracy, Section IV-B3).
        """
        lowered = query.lower()
        matches: list[SimilarValue] = []
        for location, pool in self._pools.items():
            for value in pool.candidates(lowered, max_distance=max_distance):
                distance = damerau_levenshtein(
                    lowered, value.lower(), max_distance=max_distance
                )
                if distance <= max_distance:
                    matches.append(SimilarValue(value, location, distance))
        matches.sort(key=lambda m: (m.distance, m.value.lower(), str(m.location)))
        return matches[:max_results]

    def best_match(self, query: str, *, max_distance: int = 2) -> SimilarValue | None:
        """The single closest value, or ``None`` when nothing is in range."""
        results = self.search(query, max_distance=max_distance, max_results=1)
        return results[0] if results else None
