"""Blocking for the similarity scan over database values.

Paper Section IV-B2: "By using smart indexes and computationally cheap
methods for blocking/indexing, this effort can be optimized."  A naive
similarity search computes an edit distance between the query span and
*every* value in the database; blocking first filters values by cheap
necessary conditions so only a small bucket needs the expensive distance.

Three filters are combined:

* **length band** — values whose length differs from the query's by more
  than the distance bound cannot match (each length unit costs one edit);
* **q-gram count filter** — a character-trigram inverted index over the
  pool.  Strings within Damerau-Levenshtein distance ``k`` must share at
  least ``max(|s|, |t|) - 1 - q·k`` padded q-grams (one edit operation
  destroys at most ``q`` grams, an adjacent transposition at most
  ``q + 1``; the ``-1`` slack absorbs the transposition surplus for all
  ``k <= q``).  Values failing the count filter are skipped without ever
  running the distance DP;
* **bag-of-characters filter** — for short strings the q-gram threshold
  is vacuous (``max(|s|, |t|) <= 1 + q·k`` admits zero shared grams), so
  short values fall back to the *bag distance* lower bound instead:
  ``max(|s|, |t|) - |multiset intersection of characters|`` never exceeds
  the Damerau-Levenshtein distance (a transposition leaves the bag
  unchanged; every other edit shifts the intersection by at most one).
  A unigram posting list over the short values applies the bound without
  scanning the pool.

Distance bounds above ``q`` (where the count threshold is no longer a
safe necessary condition) drop the q-gram filter and use the length band
plus the bag filter, so recall is guaranteed for every configuration.

Posting lists are stored as flat interleaved ``array('I')`` pairs —
``(value index, multiplicity)`` — which keeps memory compact and makes
the on-disk snapshot (:meth:`BlockedValuePool.state_dict`) a C-speed
copy instead of a per-element rebuild.
"""

from __future__ import annotations

from array import array
from collections import Counter, defaultdict
from collections.abc import Iterable

from repro.text.ngrams import padded_qgrams

#: Trigrams: the classic blocking sweet spot for short-to-medium strings.
DEFAULT_Q = 3


def _pairs(posting: array) -> zip:
    """Iterate an interleaved ``(index, count)`` posting array."""
    it = iter(posting)
    return zip(it, it)


class BlockedValuePool:
    """A pool of strings indexed for cheap candidate pre-selection.

    The pool stores every value once, buckets it by length, and posts its
    padded q-gram *counts* (plus, for short values, its character counts)
    into inverted indexes.  :meth:`candidate_indices` intersects the
    query's profiles with the posting lists (multiset semantics, so
    repeated grams are counted correctly) and returns only the values
    passing the filters — a superset of the true matches that is
    typically orders of magnitude smaller than the length band.
    """

    def __init__(self, values: Iterable[str] = (), *, q: int = DEFAULT_Q):
        if q <= 0:
            raise ValueError(f"q must be positive, got {q}")
        self._q = q
        # Character postings cover every value short enough for the
        # q-gram threshold to be vacuous at some valid bound (k <= q).
        self._short_cap = 1 + q * q
        self._values: list[str] = []
        self._lengths = array("I")
        self._by_length: dict[int, array] = defaultdict(lambda: array("I"))
        # gram -> interleaved (value index, multiplicity) pairs
        self._postings: dict[str, array] = defaultdict(lambda: array("I"))
        self._char_postings: dict[str, array] = defaultdict(lambda: array("I"))
        for value in values:
            self.add(value)

    def add(self, value: str) -> None:
        """Add one value to the pool."""
        index = len(self._values)
        self._values.append(value)
        lowered = value.lower()
        length = len(lowered)
        self._lengths.append(length)
        self._by_length[length].append(index)
        for gram, count in Counter(padded_qgrams(lowered, self._q)).items():
            self._postings[gram].extend((index, count))
        if length <= self._short_cap:
            for char, count in Counter(lowered).items():
                self._char_postings[char].extend((index, count))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def q(self) -> int:
        return self._q

    def value(self, index: int) -> str:
        return self._values[index]

    # ----------------------------------------------------------- filtering

    def candidate_indices(self, query: str, *, max_distance: int) -> list[int]:
        """Pool indices of values plausibly within ``max_distance``.

        The result is a superset-filter: every value whose (case-folded)
        Damerau-Levenshtein distance to ``query`` is within the bound is
        returned; values that provably cannot match are dropped without a
        distance computation.
        """
        lowered = query.lower()
        k = max_distance
        q = self._q
        qlen = len(lowered)
        if k < 0:
            return []
        lo, hi = max(0, qlen - k), qlen + k
        picked: set[int] = set()

        # Tiny strings: max(|s|,|t|) <= k can match while sharing nothing
        # at all (not even a character), so they are admitted blindly.
        if qlen <= k:
            for length in range(0, k + 1):
                picked.update(self._by_length.get(length, ()))

        if k <= q:
            # Short values (both lengths at or below the vacuous cap) can
            # match with zero shared grams; the bag filter covers them.
            vacuous_cap = 1 + q * k
            bag_hi = min(hi, vacuous_cap) if qlen <= vacuous_cap else -1
            gram_lo = vacuous_cap + 1 if qlen <= vacuous_cap else lo
        else:
            # The count threshold is not a safe necessary condition for
            # k > q: bag-filter the char-indexed short values, admit the
            # rest of the band blindly.
            bag_hi = min(hi, self._short_cap)
            gram_lo = -1
            for length in range(max(lo, self._short_cap + 1), hi + 1):
                picked.update(self._by_length.get(length, ()))

        if bag_hi >= lo:
            lengths = self._lengths
            shared: dict[int, int] = defaultdict(int)
            for char, qcount in Counter(lowered).items():
                posting = self._char_postings.get(char)
                if posting is None:
                    continue
                for index, vcount in _pairs(posting):
                    shared[index] += min(qcount, vcount)
            for index, count in shared.items():
                tlen = lengths[index]
                if lo <= tlen <= bag_hi and max(qlen, tlen) - count <= k:
                    picked.add(index)

        if 0 <= gram_lo <= hi:
            lengths = self._lengths
            threshold_base = 1 + q * k
            shared = defaultdict(int)
            for gram, qcount in Counter(padded_qgrams(lowered, q)).items():
                posting = self._postings.get(gram)
                if posting is None:
                    continue
                for index, vcount in _pairs(posting):
                    shared[index] += min(qcount, vcount)
            for index, count in shared.items():
                tlen = lengths[index]
                if (
                    gram_lo <= tlen <= hi
                    and count >= max(qlen, tlen) - threshold_base
                ):
                    picked.add(index)
        return sorted(picked)

    def candidates(self, query: str, *, max_distance: int) -> list[str]:
        """Like :meth:`candidate_indices`, returning the values."""
        return [
            self._values[i]
            for i in self.candidate_indices(query, max_distance=max_distance)
        ]

    # -------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Plain-structure snapshot for on-disk persistence.

        Arrays are shared (not copied): snapshots are taken for immediate
        serialization, and the pool itself is append-only.
        """
        return {
            "q": self._q,
            "values": self._values,
            "lengths": self._lengths,
            "by_length": dict(self._by_length),
            "postings": dict(self._postings),
            "char_postings": dict(self._char_postings),
        }

    @classmethod
    def from_state(cls, state: dict) -> "BlockedValuePool":
        """Rebuild a pool from :meth:`state_dict` without re-deriving
        grams; posting arrays are adopted as-is (C-speed warm load)."""
        pool = cls(q=int(state["q"]))
        pool._values = list(state["values"])
        pool._lengths = array("I", state["lengths"])
        pool._by_length.update(
            (int(length), array("I", ids))
            for length, ids in state["by_length"].items()
        )
        pool._postings.update(
            (gram, array("I", posting))
            for gram, posting in state["postings"].items()
        )
        pool._char_postings.update(
            (char, array("I", posting))
            for char, posting in state["char_postings"].items()
        )
        return pool
