"""Blocking for the similarity scan over database values.

Paper Section IV-B2: "By using smart indexes and computationally cheap
methods for blocking/indexing, this effort can be optimized."  A naive
similarity search computes an edit distance between the query span and
*every* value in the database; blocking first partitions values by cheap
keys so only a small bucket needs the expensive distance.

We block on two keys, unioning the buckets:

* first character (values sharing the query's first letter), and
* length band (values whose length differs by at most the distance bound —
  a necessary condition for the Damerau-Levenshtein distance to be within
  the bound).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable


class BlockedValuePool:
    """A pool of strings partitioned for cheap candidate pre-selection."""

    def __init__(self, values: Iterable[str]):
        self._values: list[str] = []
        self._by_first_char: dict[str, list[int]] = defaultdict(list)
        self._by_length: dict[int, list[int]] = defaultdict(list)
        for value in values:
            self.add(value)

    def add(self, value: str) -> None:
        """Add one value to the pool."""
        index = len(self._values)
        self._values.append(value)
        lowered = value.lower()
        if lowered:
            self._by_first_char[lowered[0]].append(index)
        self._by_length[len(lowered)].append(index)

    def __len__(self) -> int:
        return len(self._values)

    def candidates(self, query: str, *, max_distance: int) -> list[str]:
        """Values plausibly within ``max_distance`` of ``query``.

        The result is a superset-filter: every value whose distance is
        within the bound *and* shares the first letter or is in the length
        band is returned.  (A value differing in its first letter can still
        be within distance 1, so the length band alone guarantees recall;
        the first-letter bucket only accelerates the common case.)
        """
        lowered = query.lower()
        picked: set[int] = set()
        if lowered:
            picked.update(self._by_first_char.get(lowered[0], ()))
        for length in range(
            max(0, len(lowered) - max_distance), len(lowered) + max_distance + 1
        ):
            picked.update(self._by_length.get(length, ()))
        return [self._values[i] for i in sorted(picked)]
