"""Inverted index over database content.

Paper Section III: "As input our system expects a question in natural
language, the schema of the database, and access to the content of the
database, e.g. via an inverted index".  The index maps normalized value
tokens to the (table, column) locations where they occur, supports exact
lookups for candidate *validation* and feeds the similarity search used
for candidate *generation*.

The index is built once per database and kept in memory; Table II of the
paper shows value lookup is the dominant cost of translation, so the
per-question work must not rescan base data.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.db.database import Database
from repro.schema.model import Column, ColumnType


@dataclass(frozen=True)
class ValueLocation:
    """Where a value was found: one column of one table."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


def normalize_value(value: object) -> str:
    """Canonical string form used as index key (lower-cased, trimmed)."""
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return str(value).strip().lower()


class InvertedIndex:
    """Exact-match index from normalized values to their locations.

    Also keeps a per-column list of distinct original values for the
    similarity scan (bounded by ``max_values_per_column`` to keep memory
    and scan time predictable on wide databases).
    """

    def __init__(self, *, max_values_per_column: int = 5000):
        self._max_values_per_column = max_values_per_column
        # After a warm load, location sets may be shared between keys and
        # original-form entries may be lists; mutators copy-on-write.
        self._locations: dict[str, set[ValueLocation]] = defaultdict(set)
        self._originals: dict[str, set[str] | list[str]] = defaultdict(set)
        self._column_values: dict[ValueLocation, list[str]] = {}
        self._column_seen: dict[ValueLocation, set[str]] = {}
        self._numeric_columns: set[ValueLocation] = set()
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic mutation counter (lets dependents detect staleness)."""
        return self._version

    @property
    def max_values_per_column(self) -> int:
        return self._max_values_per_column

    # ------------------------------------------------------------ building

    @classmethod
    def build(cls, database: Database, **kwargs: int) -> "InvertedIndex":
        """Index every text-like column of ``database``.

        Numeric columns are recorded (so numeric candidates can be located)
        but their values are not enumerated into the similarity pool — a
        number extracted from the question is its own best candidate
        (Section IV-B2).
        """
        index = cls(**kwargs)
        for table in database.schema.tables:
            for column in table.columns:
                index._index_column(database, column)
        return index

    def _index_column(self, database: Database, column: Column) -> None:
        location = ValueLocation(column.table, column.name)
        values = database.column_values(column, limit=self._max_values_per_column)
        if column.column_type in (ColumnType.NUMBER, ColumnType.BOOLEAN):
            self._numeric_columns.add(location)
        distinct: list[str] = []
        seen: set[str] = set()
        for value in values:
            key = normalize_value(value)
            if not key:
                continue
            self._locations[key].add(location)
            original = str(value)
            self._originals[key].add(original)
            if key not in seen:
                seen.add(key)
                distinct.append(original)
        self._column_values[location] = distinct
        self._column_seen[location] = seen
        self._version += 1

    def add_value(self, value: object, location: ValueLocation) -> None:
        """Index one value incrementally (tests and incremental loads).

        Mirrors :meth:`_index_column`: the exact-lookup maps always learn
        the value, while the per-column similarity pool deduplicates on
        the normalized key and stays bounded by ``max_values_per_column``.
        """
        key = normalize_value(value)
        if not key:
            return
        locations = self._locations.get(key)
        if locations is None:
            self._locations[key] = {location}
        elif location not in locations:
            # Copy on write: a warm load interns one set per distinct
            # location combination, shared across keys.
            self._locations[key] = {*locations, location}
        original = str(value)
        originals = self._originals.get(key)
        if isinstance(originals, set):
            originals.add(original)
        else:  # missing, or an adopted warm-load list
            self._originals[key] = {*(originals or ()), original}
        column = self._column_values.setdefault(location, [])
        seen = self._seen_for(location)
        if key not in seen and len(column) < self._max_values_per_column:
            seen.add(key)
            column.append(original)
        self._version += 1

    def _seen_for(self, location: ValueLocation) -> set[str]:
        """Normalized keys already in a column's similarity pool; derived
        lazily after a warm load (only :meth:`add_value` needs it)."""
        seen = self._column_seen.get(location)
        if seen is None:
            seen = {
                normalize_value(v) for v in self._column_values.get(location, ())
            }
            self._column_seen[location] = seen
        return seen

    # ------------------------------------------------------------- queries

    def lookup(self, value: object) -> set[ValueLocation]:
        """Exact (normalized) lookup: all locations containing ``value``."""
        return set(self._locations.get(normalize_value(value), set()))

    def contains(self, value: object) -> bool:
        return normalize_value(value) in self._locations

    def original_forms(self, value: object) -> set[str]:
        """Original-cased spellings of a normalized value."""
        return set(self._originals.get(normalize_value(value), set()))

    def values_in_column(self, location: ValueLocation) -> list[str]:
        """Distinct original values indexed for a column."""
        return list(self._column_values.get(location, []))

    def text_locations(self) -> list[ValueLocation]:
        """All indexed columns that hold text-like values."""
        return [
            location for location in self._column_values
            if location not in self._numeric_columns
        ]

    def is_numeric_column(self, location: ValueLocation) -> bool:
        return location in self._numeric_columns

    @property
    def num_distinct_values(self) -> int:
        return len(self._locations)

    def iter_text_values(self):
        """Yield ``(original_value, location)`` pairs for text columns."""
        for location in self.text_locations():
            for value in self._column_values[location]:
                yield value, location

    # -------------------------------------------------------- persistence

    def state_dict(self) -> dict:
        """Plain-structure snapshot for on-disk persistence.

        Locations are flattened to a ``(table, column)`` id table (so the
        payload survives refactors of :class:`ValueLocation` itself) and
        the per-key location sets are interned by distinct combination —
        values share a handful of combinations, and a warm load rebuilds
        one shared set per combination instead of one set per key.
        """
        loc_ids: dict[ValueLocation, int] = {}
        loc_table: list[tuple[str, str]] = []

        def loc_id(location: ValueLocation) -> int:
            lid = loc_ids.get(location)
            if lid is None:
                lid = len(loc_table)
                loc_ids[location] = lid
                loc_table.append((location.table, location.column))
            return lid

        locset_ids: dict[tuple[int, ...], int] = {}
        locset_table: list[tuple[int, ...]] = []
        locations: dict[str, int] = {}
        for key, locs in self._locations.items():
            combo = tuple(sorted(loc_id(loc) for loc in locs))
            sid = locset_ids.get(combo)
            if sid is None:
                sid = len(locset_table)
                locset_ids[combo] = sid
                locset_table.append(combo)
            locations[key] = sid
        return {
            "max_values_per_column": self._max_values_per_column,
            "loc_table": loc_table,
            "locset_table": locset_table,
            "locations": locations,
            "originals": {
                key: sorted(originals) for key, originals in self._originals.items()
            },
            "column_values": [
                (loc_id(loc), list(values))
                for loc, values in self._column_values.items()
            ],
            "numeric_columns": sorted(
                loc_id(loc) for loc in self._numeric_columns
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "InvertedIndex":
        """Rebuild an index from :meth:`state_dict`.

        Adopts the snapshot structures wholesale: location sets are
        shared per combination and original forms stay lists until
        mutated (see :meth:`add_value`), so loading stays proportional to
        the pickle size, not to a per-value Python rebuild.
        """
        index = cls(max_values_per_column=int(state["max_values_per_column"]))
        loc_objs = [ValueLocation(table, column) for table, column in state["loc_table"]]
        locsets = [
            {loc_objs[lid] for lid in combo} for combo in state["locset_table"]
        ]
        index._locations.update(
            (key, locsets[sid]) for key, sid in state["locations"].items()
        )
        index._originals.update(state["originals"])
        for lid, values in state["column_values"]:
            index._column_values[loc_objs[lid]] = values
        # _column_seen is derived lazily by _seen_for on first mutation.
        index._numeric_columns = {loc_objs[lid] for lid in state["numeric_columns"]}
        index._version = 1
        return index
