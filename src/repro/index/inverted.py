"""Inverted index over database content.

Paper Section III: "As input our system expects a question in natural
language, the schema of the database, and access to the content of the
database, e.g. via an inverted index".  The index maps normalized value
tokens to the (table, column) locations where they occur, supports exact
lookups for candidate *validation* and feeds the similarity search used
for candidate *generation*.

The index is built once per database and kept in memory; Table II of the
paper shows value lookup is the dominant cost of translation, so the
per-question work must not rescan base data.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.db.database import Database
from repro.schema.model import Column, ColumnType


@dataclass(frozen=True)
class ValueLocation:
    """Where a value was found: one column of one table."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


def normalize_value(value: object) -> str:
    """Canonical string form used as index key (lower-cased, trimmed)."""
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return str(value).strip().lower()


class InvertedIndex:
    """Exact-match index from normalized values to their locations.

    Also keeps a per-column list of distinct original values for the
    similarity scan (bounded by ``max_values_per_column`` to keep memory
    and scan time predictable on wide databases).
    """

    def __init__(self, *, max_values_per_column: int = 5000):
        self._max_values_per_column = max_values_per_column
        self._locations: dict[str, set[ValueLocation]] = defaultdict(set)
        self._originals: dict[str, set[str]] = defaultdict(set)
        self._column_values: dict[ValueLocation, list[str]] = {}
        self._numeric_columns: set[ValueLocation] = set()

    # ------------------------------------------------------------ building

    @classmethod
    def build(cls, database: Database, **kwargs: int) -> "InvertedIndex":
        """Index every text-like column of ``database``.

        Numeric columns are recorded (so numeric candidates can be located)
        but their values are not enumerated into the similarity pool — a
        number extracted from the question is its own best candidate
        (Section IV-B2).
        """
        index = cls(**kwargs)
        for table in database.schema.tables:
            for column in table.columns:
                index._index_column(database, column)
        return index

    def _index_column(self, database: Database, column: Column) -> None:
        location = ValueLocation(column.table, column.name)
        values = database.column_values(column, limit=self._max_values_per_column)
        if column.column_type in (ColumnType.NUMBER, ColumnType.BOOLEAN):
            self._numeric_columns.add(location)
        distinct: list[str] = []
        seen: set[str] = set()
        for value in values:
            key = normalize_value(value)
            if not key:
                continue
            self._locations[key].add(location)
            original = str(value)
            self._originals[key].add(original)
            if key not in seen:
                seen.add(key)
                distinct.append(original)
        self._column_values[location] = distinct

    def add_value(self, value: object, location: ValueLocation) -> None:
        """Manually index one value (used in tests and incremental loads)."""
        key = normalize_value(value)
        self._locations[key].add(location)
        self._originals[key].add(str(value))
        self._column_values.setdefault(location, []).append(str(value))

    # ------------------------------------------------------------- queries

    def lookup(self, value: object) -> set[ValueLocation]:
        """Exact (normalized) lookup: all locations containing ``value``."""
        return set(self._locations.get(normalize_value(value), set()))

    def contains(self, value: object) -> bool:
        return normalize_value(value) in self._locations

    def original_forms(self, value: object) -> set[str]:
        """Original-cased spellings of a normalized value."""
        return set(self._originals.get(normalize_value(value), set()))

    def values_in_column(self, location: ValueLocation) -> list[str]:
        """Distinct original values indexed for a column."""
        return list(self._column_values.get(location, []))

    def text_locations(self) -> list[ValueLocation]:
        """All indexed columns that hold text-like values."""
        return [
            location for location in self._column_values
            if location not in self._numeric_columns
        ]

    def is_numeric_column(self, location: ValueLocation) -> bool:
        return location in self._numeric_columns

    @property
    def num_distinct_values(self) -> int:
        return len(self._locations)

    def iter_text_values(self):
        """Yield ``(original_value, location)`` pairs for text columns."""
        for location in self.text_locations():
            for value in self._column_values[location]:
                yield value, location
