"""Concurrent NL-to-SQL inference serving.

The production-shaped layer over the translation pipelines: a bounded
request queue with a micro-batching worker pool
(:class:`TranslationService`), an LRU+TTL result cache
(:class:`TranslationCache`), graceful degradation to the heuristic
baseline on model failure or deadline breach, a metrics registry
(:class:`MetricsRegistry`), and two interchangeable HTTP front-ends —
the threaded stdlib :class:`ServingServer` and the selectors-based
non-blocking :class:`AsyncServingServer` — sharing one route
implementation (:mod:`repro.serving.routes`).  Start either from the
CLI with ``repro serve --http-impl {threaded,async}``.
"""

from repro.serving.async_http import AsyncServingServer
from repro.serving.cache import CacheKey, TranslationCache, normalize_question
from repro.serving.http import ServingRequestHandler, ServingServer
from repro.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledHistogram,
    MetricsRegistry,
    merge_snapshots,
    quantile_from_snapshot,
    render_snapshot_text,
    series_key,
    split_series_key,
)
from repro.serving.runtime import DatabaseRuntime
from repro.serving.service import (
    QueueFullError,
    ServeRequest,
    ServeResponse,
    ServiceStoppedError,
    ServingError,
    TranslationService,
    UnknownDatabaseError,
)

__all__ = [
    "AsyncServingServer",
    "CacheKey",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DatabaseRuntime",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "LabeledHistogram",
    "MetricsRegistry",
    "QueueFullError",
    "ServeRequest",
    "ServeResponse",
    "ServiceStoppedError",
    "ServingError",
    "ServingRequestHandler",
    "ServingServer",
    "TranslationCache",
    "TranslationService",
    "UnknownDatabaseError",
    "merge_snapshots",
    "normalize_question",
    "quantile_from_snapshot",
    "render_snapshot_text",
    "series_key",
    "split_series_key",
]
