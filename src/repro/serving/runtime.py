"""Per-database serving state: pipeline, fallback, and shared indexes.

One :class:`DatabaseRuntime` bundles everything the service needs to
answer questions against a single database: the (thread-safe)
:class:`~repro.db.database.Database`, a shared
:class:`~repro.preprocessing.pipeline.Preprocessor` (its inverted index is
built once and read concurrently), the neural
:class:`~repro.pipeline.ValueNetPipeline` when a model is available, and
the :class:`~repro.baselines.heuristic.HeuristicBaseline` used both as the
primary engine in model-free deployments and as the degraded fallback.

The neural model mutates shared state during prediction (train/eval
flags, per-step decoder caches), so translate calls are serialized per
runtime with a lock; different databases still run fully in parallel, and
cache hits never take the lock.
"""

from __future__ import annotations

import time

from repro.baselines.heuristic import HeuristicBaseline
from repro.concurrency import make_lock
from repro.db.database import Database
from repro.db.executor import execute_with_budget
from repro.model.valuenet import ValueNetModel
from repro.pipeline.valuenet import TranslationResult, ValueNetPipeline
from repro.preprocessing.pipeline import Preprocessor
from repro.schema.graph import SchemaGraph
from repro.sql.dialect import get_dialect


class DatabaseRuntime:
    """Everything needed to serve one database.

    Args:
        database: the database to answer questions against.
        model: trained model; ``None`` serves heuristic-only (the
            fallback becomes the primary engine and responses are not
            marked degraded).
        database_id: external name for routing; defaults to the schema
            name.
        beam_size: beam width for the neural pipeline.
        pipeline: pre-built pipeline override (used by tests to inject
            fakes); mutually exclusive with ``model``.
        preprocessor: pre-built preprocessor override; by default one is
            created against the shared index registry, so the runtime,
            the neural pipeline, and the heuristic fallback all use the
            same :class:`~repro.index.inverted.InvertedIndex` (exactly
            one per database process-wide).
        execution_timeout_s: wall-clock budget for executing one
            *generated* query (``None`` disables the budget); enforced
            via ``sqlite3.Connection.interrupt`` so a pathological query
            cannot wedge a worker.
        execution_max_rows: result-row cap for executed queries.
        policy: optional :class:`~repro.policy.engine.PolicyEngine`
            enforced as the final safe-execute gate in
            :meth:`execute_sql` (the service also checks earlier, with
            tenant context — this layer catches anything that bypasses
            it).
        dialect: default SQL dialect for responses from this database
            (requests may override per call).
    """

    def __init__(
        self,
        database: Database,
        model: ValueNetModel | None = None,
        *,
        database_id: str | None = None,
        beam_size: int = 1,
        pipeline: ValueNetPipeline | None = None,
        preprocessor: Preprocessor | None = None,
        execution_timeout_s: float | None = 5.0,
        execution_max_rows: int | None = 10_000,
        policy=None,
        dialect: str = "sqlite",
    ):
        if model is not None and pipeline is not None:
            raise ValueError("pass either model or pipeline, not both")
        self.database = database
        self.database_id = database_id or database.schema.name
        self.beam_size = beam_size
        self.preprocessor = (
            preprocessor if preprocessor is not None else Preprocessor(database)
        )
        if pipeline is not None:
            self.pipeline = pipeline
        elif model is not None:
            self.pipeline = ValueNetPipeline(
                model,
                database,
                preprocessor=self.preprocessor,
                beam_size=beam_size,
                execution_timeout_s=execution_timeout_s,
                execution_max_rows=execution_max_rows,
                policy=policy,
            )
        else:
            self.pipeline = None
        # The fallback engine mutates shared per-translate state, like the
        # pipeline it stands in for.
        self.fallback = HeuristicBaseline(  # guarded by: _lock
            database, preprocessor=self.preprocessor
        )
        self.execution_timeout_s = execution_timeout_s
        self.execution_max_rows = execution_max_rows
        self.policy = policy
        self.dialect = get_dialect(dialect).name
        self._graph: SchemaGraph | None = None
        self._lock = make_lock(f"DatabaseRuntime[{self.database_id}]._lock")

    @property
    def has_model(self) -> bool:
        return self.pipeline is not None

    @property
    def searcher(self):
        """The shared similarity searcher (for serving metrics wiring)."""
        return self.preprocessor.searcher

    def translate(
        self,
        question: str,
        *,
        execute: bool = False,
        beam_size: int | None = None,
    ) -> TranslationResult:
        """Run the neural pipeline (requires a model).

        ``beam_size`` overrides the pipeline's configured beam for this
        call; the per-runtime lock makes the temporary override safe.
        """
        if self.pipeline is None:
            raise RuntimeError(f"runtime {self.database_id!r} has no model")
        with self._lock:
            configured = self.pipeline.beam_size
            if beam_size is not None:
                self.pipeline.beam_size = beam_size
            try:
                return self.pipeline.translate(question, execute=execute)
            finally:
                self.pipeline.beam_size = configured

    def translate_batch(
        self,
        questions: list[str],
        *,
        execute: bool | list[bool] = False,
        beam_size: int | None = None,
        encode_observer=None,
    ) -> list[TranslationResult]:
        """Translate a micro-batch with one fused encoder pass.

        Same contract as :meth:`translate` per question; ``execute`` may
        be one flag per question since micro-batches group requests by
        database and beam size only.  Pipelines without a
        ``translate_batch`` method (e.g. test fakes) fall back to
        sequential translate calls.
        """
        if self.pipeline is None:
            raise RuntimeError(f"runtime {self.database_id!r} has no model")
        with self._lock:
            configured = self.pipeline.beam_size
            if beam_size is not None:
                self.pipeline.beam_size = beam_size
            try:
                batched = getattr(self.pipeline, "translate_batch", None)
                if batched is not None:
                    return batched(
                        questions, execute=execute, encode_observer=encode_observer
                    )
                flags = (
                    [bool(f) for f in execute]
                    if isinstance(execute, (list, tuple))
                    else [bool(execute)] * len(questions)
                )
                return [
                    self.pipeline.translate(question, execute=flag)
                    for question, flag in zip(questions, flags)
                ]
            finally:
                self.pipeline.beam_size = configured

    def adopt_index(self, entry, *, schema=None):
        """Swap in a background-built index bundle (and optionally a
        re-introspected schema); returns the previously bound searcher.

        Everything the translate path reads is rebound in ONE critical
        section of the per-runtime lock — the same lock that serializes
        :meth:`translate` — so a request either runs entirely against the
        old bundle or entirely against the new one:

        * ``database.schema`` is replaced on the shared object (the
          pipeline passes it to the model per call, so pointer networks
          see the new tables/columns immediately);
        * the preprocessor rebinds index, searcher, generator, validator;
        * the pipeline's SQL builder and the heuristic fallback are
          rebuilt against the new schema;
        * the cached PK/FK graph is reset.
        """
        from repro.postprocessing.sql_builder import SqlBuilder

        with self._lock:
            old_searcher = self.preprocessor.searcher
            if schema is not None:
                self.database.schema = schema
            self.preprocessor.rebind(entry.index, entry.searcher)
            if self.pipeline is not None and hasattr(self.pipeline, "builder"):
                self.pipeline.builder = SqlBuilder(self.database.schema)
            self.fallback = HeuristicBaseline(
                self.database, preprocessor=self.preprocessor
            )
            self._graph = None
        return old_searcher

    @property
    def schema_graph(self) -> SchemaGraph:
        """Lazily-built PK/FK graph (for policy checks and re-rendering)."""
        if self._graph is None:
            self._graph = SchemaGraph(self.database.schema)
        return self._graph

    def execute_sql(self, sql: str, *, tenant_id: str | None = None) -> list[tuple]:
        """Execute generated SQL under the runtime's budget and row cap.

        With a policy engine attached this is the final safe-execute
        gate: the SQL is re-validated (with whatever tenant context the
        caller has) immediately before it reaches the database.
        """
        return execute_with_budget(
            self.database,
            sql,
            timeout_s=self.execution_timeout_s,
            max_rows=self.execution_max_rows,
            policy=self.policy,
            tenant_id=tenant_id,
        )

    def translate_fallback(
        self, question: str, *, execute: bool = False
    ) -> TranslationResult:
        """Run the rule-based fallback engine."""
        with self._lock:
            result = self.fallback.translate(question)
        if execute and result.sql is not None and result.error is None:
            start = time.perf_counter()
            try:
                result.rows = self.execute_sql(result.sql)
            except Exception as exc:  # justified: result.error carries the failure to the caller
                result.error = f"execution failed: {exc}"
            result.timings.execution = time.perf_counter() - start
        return result
