"""Transport-agnostic HTTP route logic for the serving front door.

Both front-door implementations — the threaded stdlib server and the
selectors-based async server (``repro.serving.async_http``) — delegate
every request to :func:`handle`, which returns a fully rendered
:class:`Response` (status, extra headers, body bytes).  Keeping the
logic here is what makes the two implementations *byte-identical* at the
body level: there is exactly one piece of code that renders a 401, a
403-policy block, or a translate payload, so the differential tests in
``tests/test_http_differential.py`` lock equivalence instead of chasing
two divergent copies.

The route surface and semantics are documented in
:mod:`repro.serving.http` (the original home of this logic).

Transports remain responsible for wire-level concerns — request
framing, Content-Length parsing, body size enforcement, keep-alive —
but render transport-level errors through :func:`error_response` /
:data:`BODY_TOO_LARGE` here so even those bodies match byte for byte.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from urllib.parse import parse_qs, urlparse

from repro.metrics import quantile_from_snapshot, series_key
from repro.serving.service import (
    QueueFullError,
    ServiceStoppedError,
    UnknownDatabaseError,
)
from repro.tenancy.controller import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
)

# One request body bound shared by both transports.
MAX_BODY_BYTES = 64 * 1024

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"


@dataclass(frozen=True)
class Response:
    """One rendered HTTP response, transport-ready."""

    status: int
    body: bytes
    content_type: str = _JSON
    headers: tuple[tuple[str, str], ...] = field(default=())


def json_response(
    status: int, payload: dict, *, headers: tuple[tuple[str, str], ...] = ()
) -> Response:
    return Response(
        status,
        json.dumps(payload).encode("utf-8"),
        headers=headers,
    )


def error_response(
    status: int,
    message: str,
    *,
    retriable: bool | None = None,
    headers: tuple[tuple[str, str], ...] = (),
) -> Response:
    payload: dict = {"error": message}
    if retriable is not None:
        payload["retriable"] = retriable
    return json_response(status, payload, headers=headers)


def body_too_large() -> Response:
    """413 for request bodies over :data:`MAX_BODY_BYTES` (both impls)."""
    return error_response(413, "request body exceeds 64 KiB")


def _retry_after_header(seconds: float) -> str:
    """Retry-After is an integer header; round up so clients never retry
    early and immediately eat another 429."""
    return str(max(1, math.ceil(seconds)))


def tenant_latency_stats(service, tenant_id: str) -> dict:
    """p50/p95/p99 (+count) of one tenant's in-service latency, in ms.

    Works against both a single-process registry snapshot and the
    cluster's ``{"fleet": ...}`` merged snapshot.
    """
    snap = service.metrics.snapshot()
    snap = snap.get("fleet", snap)
    hist = snap.get(series_key("tenant_latency_seconds", "tenant", tenant_id))
    if not isinstance(hist, dict):
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    return {
        "count": hist.get("count", 0),
        "p50_ms": 1000.0 * quantile_from_snapshot(hist, 0.50),
        "p95_ms": 1000.0 * quantile_from_snapshot(hist, 0.95),
        "p99_ms": 1000.0 * quantile_from_snapshot(hist, 0.99),
    }


def _api_key(headers) -> str | None:
    """Extract the API key: ``Authorization: Bearer`` or ``X-API-Key``.

    ``headers`` is any case-insensitive mapping with ``.get`` — the
    stdlib ``email.message.Message`` and the async server's header view
    both qualify.
    """
    auth = headers.get("Authorization") or ""
    if auth.lower().startswith("bearer "):
        return auth[len("bearer "):].strip() or None
    key = headers.get("X-API-Key") or ""
    return key.strip() or None


def _service_ready(service) -> tuple[bool, str]:
    if service is None:
        return False, "service not attached (warming up)"
    is_ready = getattr(service, "is_ready", None)
    if is_ready is not None and not is_ready():
        return False, "service is not ready"
    return True, "ok"


# --------------------------------------------------------------- GET routes


def _tenant_usage_payload(service, controller, tenant_id: str) -> dict | None:
    usage = controller.usage(tenant_id)
    if usage is None:
        return None
    usage["latency"] = tenant_latency_stats(service, tenant_id)
    return usage


def _handle_tenants_get(service, path: str, headers) -> Response:
    controller = getattr(service, "tenancy", None)
    if controller is None:
        return error_response(404, "tenancy is not enabled")
    key = _api_key(headers)
    if path == "/tenants":
        if not controller.is_admin(key):
            return error_response(403 if key else 401, "admin API key required")
        overview = controller.overview()
        for entry in overview["tenants"]:
            if entry is not None:
                entry["latency"] = tenant_latency_stats(service, entry["id"])
        return json_response(200, overview)
    # /tenants/<id>/usage
    parts = path.strip("/").split("/")
    if len(parts) != 3 or parts[2] != "usage":
        return error_response(404, f"unknown path {path!r}")
    tenant_id = parts[1]
    if not controller.is_admin(key):
        try:
            tenant = controller.authenticate(key)
        except AuthenticationError:
            return error_response(401, "valid API key required")
        if tenant.tenant_id != tenant_id:
            return error_response(403, "key does not match this tenant")
    payload = _tenant_usage_payload(service, controller, tenant_id)
    if payload is None:
        return error_response(404, f"unknown tenant {tenant_id!r}")
    return json_response(200, payload)


def _handle_get(service, target: str, headers) -> Response:
    parsed = urlparse(target)
    if parsed.path == "/livez":
        return json_response(200, {"live": True})
    if parsed.path == "/readyz":
        ready, reason = _service_ready(service)
        if ready:
            return json_response(200, {"ready": True})
        return json_response(
            503, {"ready": False, "reason": reason, "retriable": True}
        )
    if parsed.path == "/healthz":
        if service is None:
            return json_response(200, {"status": "starting", "ready": False})
        return json_response(200, service.health())
    if parsed.path == "/metrics":
        if service is None:
            return Response(200, b"", _PROM)
        params = parse_qs(parsed.query)
        if params.get("format", [""])[0] == "json":
            return json_response(200, service.metrics.snapshot())
        return Response(
            200, service.metrics.render_text().encode("utf-8"), _PROM
        )
    if parsed.path == "/tenants" or parsed.path.startswith("/tenants/"):
        return _handle_tenants_get(service, parsed.path, headers)
    return error_response(404, f"unknown path {parsed.path!r}")


# -------------------------------------------------------------- POST routes


def _handle_translate(service, headers, body: bytes) -> Response:
    if service is None:
        return error_response(503, "service is warming up", retriable=True)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return error_response(400, f"invalid JSON body: {exc}")
    if not isinstance(payload, dict) or not isinstance(
        payload.get("question"), str
    ):
        return error_response(400, 'body must include a string "question"')
    tenant_kwargs: dict = {}
    controller = getattr(service, "tenancy", None)
    if controller is not None:
        try:
            tenant = controller.admit(_api_key(headers))
        except AuthenticationError as exc:
            return json_response(
                401,
                {"error": str(exc), "reason": "auth"},
                headers=(("WWW-Authenticate", "Bearer"),),
            )
        except RateLimitedError as exc:
            return json_response(
                429,
                {"error": str(exc), "reason": "rate_limited", "retriable": True},
                headers=(("Retry-After", _retry_after_header(exc.retry_after_s)),),
            )
        except QuotaExceededError as exc:
            return json_response(
                429,
                {"error": str(exc), "reason": "quota", "retriable": False},
                headers=(("Retry-After", _retry_after_header(exc.retry_after_s)),),
            )
        tenant_kwargs = {
            "tenant_id": tenant.tenant_id,
            "tenant_weight": tenant.weight,
        }
    try:
        response = service.translate(
            payload["question"],
            payload.get("database_id"),
            beam_size=payload.get("beam_size"),
            execute=bool(payload.get("execute", False)),
            timeout_ms=payload.get("timeout_ms"),
            inject_failure=bool(payload.get("inject_failure", False)),
            dialect=payload.get("dialect"),
            **tenant_kwargs,
        )
    except UnknownDatabaseError as exc:
        return error_response(404, str(exc))
    except (QueueFullError, ServiceStoppedError) as exc:
        return error_response(503, str(exc), retriable=True)
    except (TypeError, ValueError) as exc:
        return error_response(400, f"bad request parameters: {exc}")
    if getattr(response, "policy", None) is not None:
        # Policy-blocked: a structured 4xx carrying the machine-readable
        # rule id(s); the query was NOT executed.
        body_payload = response.as_dict()
        body_payload["reason"] = "policy"
        body_payload["rule_id"] = response.policy.get("rule_id")
        return json_response(403, body_payload)
    return json_response(200, response.as_dict())


def _handle_admin_refresh(service, headers, body: bytes | None) -> Response:
    """``POST /admin/refresh`` — force a KB refresh (admin-gated).

    Body (optional JSON): ``{"database_id": ..., "wait": bool}``.  With
    ``wait`` (the default) the refresh runs synchronously and the 200
    body reports what was swapped; ``wait=false`` schedules it and
    answers 202.  In cluster mode the supervisor broadcasts a refresh
    frame to every READY worker (always 202 — workers refresh
    asynchronously).
    """
    if service is None:
        return error_response(503, "service is warming up", retriable=True)
    controller = getattr(service, "tenancy", None)
    if controller is not None:
        key = _api_key(headers)
        if not controller.is_admin(key):
            return error_response(403 if key else 401, "admin API key required")
    payload: dict = {}
    if body:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_response(400, f"invalid JSON body: {exc}")
        if not isinstance(decoded, dict):
            return error_response(400, "body must be a JSON object")
        payload = decoded
    database_id = payload.get("database_id")
    refresher = getattr(service, "refresher", None)
    if refresher is not None:  # single-process service with a KBRefresher
        if payload.get("wait", True):
            refreshed = refresher.refresh_now(database_id)
            return json_response(
                200,
                {"status": "ok", "refreshed": refreshed,
                 "evolve": refresher.stats()},
            )
        refresher.trigger()
        return json_response(202, {"status": "scheduled"})
    trigger = getattr(service, "trigger_refresh", None)
    if trigger is None or not getattr(service, "refresh_enabled", False):
        return error_response(
            409, "refresh is not enabled (start with --kb-refresh-interval)"
        )
    workers = trigger(database_id)
    return json_response(202, {"status": "scheduled", "workers": workers})


# ------------------------------------------------------------- entry point


def handle(
    service, method: str, target: str, headers, body: bytes | None
) -> Response:
    """Route one fully-read request; never raises for expected errors.

    ``headers`` must support case-insensitive ``.get(name)``; ``body``
    is the complete (already de-chunked) request body, or ``None`` for
    bodyless methods.  Wire-level failures (bad Content-Length,
    oversized body) are the transport's to detect — render them with
    :func:`error_response` / :func:`body_too_large` so bodies stay
    identical across implementations.
    """
    if method == "GET":
        return _handle_get(service, target, headers)
    if method == "POST":
        parsed = urlparse(target)
        if parsed.path == "/admin/refresh":
            if body is not None and len(body) > MAX_BODY_BYTES:
                return body_too_large()
            return _handle_admin_refresh(service, headers, body)
        if parsed.path != "/translate":
            return error_response(404, f"unknown path {parsed.path!r}")
        if not body:
            return error_response(400, "body required (<= 64 KiB)")
        if len(body) > MAX_BODY_BYTES:
            return body_too_large()
        return _handle_translate(service, headers, body)
    return error_response(405, f"method {method} not allowed")
