"""The concurrent translation service: queue, worker pool, micro-batching.

Request lifecycle::

    submit() -> bounded queue -> worker pulls a request, drains compatible
    requests into a micro-batch (same database + beam size, bounded by
    ``max_batch`` and ``batch_window_ms``) -> per request: cache lookup /
    triage -> ONE batched neural pipeline call for the whole micro-batch
    (fused encoder pass, per-request decode) -> on failure or deadline
    breach, heuristic fallback tagged ``degraded`` -> response event set.

Deadline policy: a request that is already past its deadline when a
worker picks it up skips the model entirely and is answered by the
heuristic fallback (reason ``deadline``); a model answer that completes
*after* the deadline is still returned (the work is already paid for) but
tagged degraded with reason ``late``.  Model exceptions and translation
errors fall back with reason ``model_error``.  Failure injection
(``inject_failure=True`` on a request, honored only when the service was
built with ``allow_failure_injection``) exercises the same path for load
tests and chaos checks.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.concurrency import make_lock
from repro.errors import ReproError, TranslationError
from repro.pipeline.timing import STAGES
from repro.pipeline.valuenet import TranslationResult
from repro.policy.engine import PolicyViolationError
from repro.serving.cache import CacheKey, TranslationCache
from repro.metrics import MetricsRegistry
from repro.serving.runtime import DatabaseRuntime
from repro.sql.dialect import DEFAULT_DIALECT, get_dialect
from repro.tenancy.scheduler import FairQueue, LaneBacklogFull


class ServingError(ReproError):
    """Base class for serving-layer failures."""


class QueueFullError(ServingError):
    """The bounded request queue is at capacity (shed load upstream)."""


class UnknownDatabaseError(ServingError):
    """The request names a database the service does not host."""


class ServiceStoppedError(ServingError):
    """submit() was called on a stopped (or never started) service."""


@dataclass
class ServeResponse:
    """What the service returns for one request."""

    question: str
    database_id: str
    sql: str | None = None
    rows: list[tuple] | None = None
    error: str | None = None
    engine: str = "model"  # "model" | "heuristic" | "cache"
    degraded: bool = False
    degraded_reason: str | None = None
    cache_hit: bool = False
    timings: dict[str, float] = field(default_factory=dict)
    queue_ms: float = 0.0
    service_ms: float = 0.0
    batch_size: int = 1
    tenant_id: str | None = None
    dialect: str = DEFAULT_DIALECT
    policy: dict | None = None  # structured violations when policy-blocked

    @property
    def ok(self) -> bool:
        return self.sql is not None and self.error is None

    @property
    def policy_blocked(self) -> bool:
        return self.policy is not None

    def as_dict(self) -> dict:
        return {
            "question": self.question,
            "database_id": self.database_id,
            "sql": self.sql,
            "rows": [list(row) for row in self.rows] if self.rows is not None else None,
            "error": self.error,
            "engine": self.engine,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "cache_hit": self.cache_hit,
            "timings_ms": {k: 1000.0 * v for k, v in self.timings.items()},
            "queue_ms": self.queue_ms,
            "service_ms": self.service_ms,
            "batch_size": self.batch_size,
            "tenant_id": self.tenant_id,
            "dialect": self.dialect,
            "policy": self.policy,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServeResponse":
        """Inverse of :meth:`as_dict` (used across the cluster IPC boundary)."""
        return cls(
            question=payload.get("question", ""),
            database_id=payload.get("database_id", ""),
            sql=payload.get("sql"),
            rows=(
                [tuple(row) for row in payload["rows"]]
                if payload.get("rows") is not None
                else None
            ),
            error=payload.get("error"),
            engine=payload.get("engine", "model"),
            degraded=bool(payload.get("degraded", False)),
            degraded_reason=payload.get("degraded_reason"),
            cache_hit=bool(payload.get("cache_hit", False)),
            timings={
                k: ms / 1000.0
                for k, ms in (payload.get("timings_ms") or {}).items()
            },
            queue_ms=float(payload.get("queue_ms", 0.0)),
            service_ms=float(payload.get("service_ms", 0.0)),
            batch_size=int(payload.get("batch_size", 1)),
            tenant_id=payload.get("tenant_id"),
            dialect=payload.get("dialect", DEFAULT_DIALECT),
            policy=payload.get("policy"),
        )


@dataclass
class ServeRequest:
    """An in-flight request; ``done`` fires once ``response`` is set."""

    question: str
    database_id: str
    beam_size: int
    execute: bool
    inject_failure: bool
    deadline: float  # monotonic seconds
    enqueued_at: float
    tenant_id: str | None = None
    tenant_weight: int = 1
    dialect: str = DEFAULT_DIALECT
    done: threading.Event = field(default_factory=threading.Event)
    response: ServeResponse | None = None

    def resolve(self, response: ServeResponse) -> None:
        self.response = response
        self.done.set()


@dataclass
class _BatchEntry:
    """Worker-side bookkeeping for one non-cached request of a micro-batch."""

    request: ServeRequest
    response: ServeResponse
    key: CacheKey
    result: TranslationResult | None = None


_SHUTDOWN = object()


class TranslationService:
    """Bounded-queue, worker-pool NL-to-SQL service over many databases.

    Args:
        runtimes: the databases to serve (ids must be unique).
        workers: worker-thread count.
        queue_size: bound on queued requests; :meth:`submit` raises
            :class:`QueueFullError` beyond it.
        per_tenant_depth: per-tenant backlog bound inside the fair
            queue (``None`` = global bound only).  With tenancy enabled
            this is what keeps one hot tenant from occupying the whole
            shared queue: its lane fills and *its* requests shed while
            other tenants keep enqueueing.
        tenancy: optional :class:`~repro.tenancy.controller.TenancyController`
            the HTTP front-end consults for auth/rate/quota admission
            and the ``/tenants`` endpoints.  The service itself only
            schedules by tenant; enforcement happens at the front door.
        policy: optional :class:`~repro.policy.engine.PolicyEngine`.
            Every response's SQL (model, fallback, or cached) is
            validated with the request's tenant context before it is
            returned or executed; violations produce a structured
            ``policy`` payload (HTTP maps it to 403) and increment the
            tenant-labeled ``policy_blocked_total`` counter.
        max_batch: micro-batch cap per worker dequeue.
        batch_window_ms: how long a worker waits to fill a batch after
            its first request.
        cache: result cache (one is created when omitted; pass ``None``
            explicitly via ``cache_capacity=0`` semantics is not
            supported — use a tiny TTL instead).
        default_timeout_ms: deadline applied when a request has none.
        metrics: registry to record into (created when omitted).
        allow_failure_injection: honor per-request ``inject_failure``
            flags (keep off outside load tests).
        ready: initial readiness.  Pass ``False`` when index warm-up
            happens after construction and call :meth:`mark_ready` once
            it completes; ``/readyz`` answers 503 until then so load
            balancers do not route traffic to a cold instance.
        allow_empty: permit constructing with zero runtimes.  Cluster
            workers whose consistent-hash shard is empty start this way
            and adopt databases via :meth:`add_runtime` only when the
            supervisor fails traffic over to them.
    """

    def __init__(
        self,
        runtimes: list[DatabaseRuntime],
        *,
        workers: int = 4,
        queue_size: int = 64,
        per_tenant_depth: int | None = None,
        max_batch: int = 8,
        batch_window_ms: float = 2.0,
        cache: TranslationCache | None = None,
        default_timeout_ms: float = 10_000.0,
        metrics: MetricsRegistry | None = None,
        allow_failure_injection: bool = False,
        ready: bool = True,
        allow_empty: bool = False,
        tenancy=None,
        policy=None,
    ):
        if not runtimes and not allow_empty:
            raise ValueError("need at least one DatabaseRuntime")
        self.runtimes: dict[str, DatabaseRuntime] = {}
        for runtime in runtimes:
            if runtime.database_id in self.runtimes:
                raise ValueError(f"duplicate database id {runtime.database_id!r}")
            self.runtimes[runtime.database_id] = runtime
        self.workers = workers
        self.max_batch = max(1, max_batch)
        self.batch_window_s = max(0.0, batch_window_ms) / 1000.0
        self.cache = cache if cache is not None else TranslationCache()
        self.default_timeout_ms = default_timeout_ms
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.allow_failure_injection = allow_failure_injection
        self.tenancy = tenancy
        self.policy = policy
        if policy is not None:
            policy.bind_metrics(self.metrics)
        self._queue = FairQueue(
            maxsize=queue_size, per_lane_limit=per_tenant_depth
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self._ready = threading.Event()
        if ready:
            self._ready.set()
        self._runtime_lock = make_lock("TranslationService._runtime_lock")
        # Set by KBRefresher.attach_service; read by the admin routes
        # and health() only.
        self.refresher = None
        # Epoch stamp is for human display only; uptime math uses the
        # monotonic twin below (see WALLCLOCK in docs/analysis-rules.md).
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self._observed_searchers: list = []  # guarded by: _runtime_lock
        self._init_metrics()
        self._attach_value_search_observers()

    # ------------------------------------------------------------- metrics

    def _init_metrics(self) -> None:
        m = self.metrics
        self._requests_total = m.counter(
            "serving_requests_total", "requests accepted into the queue")
        self._rejected_total = m.counter(
            "serving_rejected_total", "requests rejected (queue full)")
        self._rejected_backlog = m.counter(
            "serving_rejected_backlog_total",
            "requests rejected because the tenant's own lane was full")
        self._tenant_requests = m.labeled_counter(
            "tenant_requests_total",
            "requests accepted into the queue, per tenant")
        self._tenant_latency = m.labeled_histogram(
            "tenant_latency_seconds", "total in-service latency, per tenant")
        self._responses_ok = m.counter(
            "serving_responses_ok_total", "successful responses")
        self._responses_error = m.counter(
            "serving_responses_error_total", "responses with an error")
        self._responses_degraded = m.counter(
            "serving_responses_degraded_total", "responses served by fallback")
        self._cache_hits = m.counter(
            "serving_cache_hits_total", "cache hits")
        self._cache_misses = m.counter(
            "serving_cache_misses_total", "cache misses")
        self._queue_depth = m.gauge(
            "serving_queue_depth", "requests currently queued")
        self._inflight = m.gauge(
            "serving_inflight", "requests currently being processed")
        self._batch_hist = m.histogram(
            "serving_batch_size", "micro-batch sizes",
            buckets=tuple(float(n) for n in range(1, 17)))
        self._encode_batch_hist = m.histogram(
            "serving_encode_batch_seconds",
            "wall time of one fused batched-encode pass")
        self._queue_wait = m.histogram(
            "serving_queue_wait_seconds", "time from submit to worker pickup")
        self._latency = m.histogram(
            "serving_latency_seconds", "total in-service latency")
        self._stage_hists = {
            stage: m.histogram(
                f"serving_stage_{stage}_seconds",
                f"per-request {stage} stage latency (Table II split)")
            for stage in STAGES
        }
        self._value_search_hist = m.histogram(
            "preprocess_value_search_seconds",
            "wall time of one similarity search over database values")
        self._value_search_cache_hits = m.counter(
            "value_search_cache_hits_total",
            "similarity-search span-memo hits")
        self._value_search_cache_misses = m.counter(
            "value_search_cache_misses_total",
            "similarity-search span-memo misses (full blocked scans)")
        self._internal_errors = m.counter(
            "serving_internal_errors_total",
            "unexpected exceptions caught in the worker/finalize paths")
        self._model_errors = m.counter(
            "serving_model_errors_total",
            "batched model calls that raised (answered by fallback)")
        self._execution_errors = m.counter(
            "serving_execution_errors_total",
            "SQL executions of cached answers that failed")

    def _attach_value_search_observers(self) -> None:
        """Subscribe to every runtime's shared searcher.

        Runtimes of different databases have distinct searchers; runtimes
        sharing one database (and therefore one registry-backed searcher)
        must not double-count, so observers are dedup'd by searcher id.
        """
        with self._runtime_lock:
            seen: set[int] = set()
            for runtime in self.runtimes.values():
                try:
                    searcher = runtime.searcher
                except AttributeError:  # test fakes without a preprocessor
                    continue
                if searcher is None or id(searcher) in seen:
                    continue
                seen.add(id(searcher))
                searcher.add_observer(self._on_value_search)
                self._observed_searchers.append(searcher)

    def _on_value_search(self, seconds: float, cache_hit: bool) -> None:
        self._value_search_hist.observe(seconds)
        if cache_hit:
            self._value_search_cache_hits.inc()
        else:
            self._value_search_cache_misses.inc()

    # ----------------------------------------------------------- lifecycle

    def start(self) -> "TranslationService":
        if self._started:
            return self
        self._started = True
        self._stopping = False
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serving-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, *, timeout: float = 10.0) -> None:
        """Drain the queue and join the workers (idempotent)."""
        if not self._started:
            return
        self._stopping = True
        for _ in self._threads:
            self._queue.push_control(_SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        self._started = False
        # Registry-backed searchers outlive the service; detach so a
        # stopped service stops recording into its metrics.
        with self._runtime_lock:
            observed, self._observed_searchers = self._observed_searchers, []
        for searcher in observed:
            searcher.remove_observer(self._on_value_search)

    def drain(self, *, timeout: float = 10.0) -> bool:
        """Graceful shutdown: stop accepting, flush the queue, then stop.

        New :meth:`submit` calls raise :class:`ServiceStoppedError`
        immediately; requests already accepted keep being processed until
        the queue is empty and no worker has a request in flight, or the
        ``timeout`` budget runs out.  Returns True when the drain was
        clean (nothing was abandoned in the queue).
        """
        self._stopping = True
        deadline = time.monotonic() + max(0.0, timeout)
        clean = False
        while time.monotonic() < deadline:
            if self._queue.empty() and self._inflight.value <= 0:
                clean = True
                break
            time.sleep(0.02)
        self.stop(timeout=max(0.5, deadline - time.monotonic()))
        return clean

    # ---------------------------------------------------------- readiness

    def mark_ready(self) -> None:
        """Flip readiness on (idempotent); ``/readyz`` starts answering 200."""
        self._ready.set()

    def is_ready(self) -> bool:
        return self._ready.is_set() and not self._stopping

    # ------------------------------------------------------- runtime admin

    def add_runtime(self, runtime: DatabaseRuntime) -> None:
        """Register another database after construction.

        Used by cluster workers for shard failover: a worker starts with
        only its shard warmed and lazily adopts a database when the
        supervisor routes it traffic for a dead sibling's shard.
        """
        with self._runtime_lock:
            if runtime.database_id in self.runtimes:
                raise ValueError(f"duplicate database id {runtime.database_id!r}")
            self.runtimes[runtime.database_id] = runtime
            # Observer wiring shares the critical section: two concurrent
            # adoptions of runtimes sharing a searcher must not
            # double-subscribe it (that would double-count every search).
            searcher = getattr(runtime, "searcher", None)
            if searcher is not None and all(
                searcher is not observed for observed in self._observed_searchers
            ):
                searcher.add_observer(self._on_value_search)
                self._observed_searchers.append(searcher)

    def on_index_swap(self, database_id: str, entry, *, schema=None) -> bool:
        """Adopt a background-rebuilt index bundle for one database.

        Called by the KB refresher after it published ``entry`` to the
        registry.  Rebinds the runtime under its own lock, invalidates
        exactly that database's cached translations, and re-wires the
        value-search metrics observer from the old searcher to the new
        one.  Returns False when this service does not host the database.
        """
        with self._runtime_lock:
            runtime = self.runtimes.get(database_id)
        adopt = getattr(runtime, "adopt_index", None)
        if adopt is None:  # unknown database, or a test fake
            return False
        old_searcher = adopt(entry, schema=schema)
        invalidate = getattr(self.cache, "invalidate_database", None)
        if invalidate is not None:
            invalidate(database_id)
        else:  # duck-typed cache fakes only expose clear()
            self.cache.clear()
        with self._runtime_lock:
            if any(s is old_searcher for s in self._observed_searchers):
                self._observed_searchers = [
                    s for s in self._observed_searchers if s is not old_searcher
                ]
                old_searcher.remove_observer(self._on_value_search)
            new_searcher = entry.searcher
            if all(s is not new_searcher for s in self._observed_searchers):
                new_searcher.add_observer(self._on_value_search)
                self._observed_searchers.append(new_searcher)
        return True

    def __enter__(self) -> "TranslationService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ---------------------------------------------------------- submission

    def submit(
        self,
        question: str,
        database_id: str | None = None,
        *,
        beam_size: int | None = None,
        execute: bool = False,
        timeout_ms: float | None = None,
        inject_failure: bool = False,
        tenant_id: str | None = None,
        tenant_weight: int = 1,
        dialect: str | None = None,
    ) -> ServeRequest:
        """Enqueue a request; returns immediately with the in-flight handle.

        ``database_id`` may be omitted when the service hosts exactly one
        database.  ``tenant_id``/``tenant_weight`` place the request on
        the tenant's fair-queue lane (anonymous traffic shares one lane),
        so a backlogged tenant is drained at its priority-class weight
        instead of FIFO order.  ``dialect`` selects the SQL dialect of
        the response (``sqlite`` / ``postgres`` / ``mysql``); when
        omitted, the target database's configured default applies.
        """
        if self._stopping:
            raise ServiceStoppedError("service is stopping")
        if database_id is None:
            if len(self.runtimes) != 1:
                raise UnknownDatabaseError(
                    "database_id is required when serving multiple databases"
                )
            database_id = next(iter(self.runtimes))
        elif database_id not in self.runtimes:
            raise UnknownDatabaseError(
                f"unknown database {database_id!r}; serving: "
                + ", ".join(sorted(self.runtimes))
            )
        runtime = self.runtimes[database_id]
        if dialect is None:
            dialect = getattr(runtime, "dialect", None)
        try:
            dialect_name = get_dialect(dialect).name
        except TranslationError as exc:
            # Surfaced as a 400 by the HTTP layer (bad request parameter).
            raise ValueError(str(exc)) from None
        now = time.monotonic()
        timeout_s = (
            timeout_ms if timeout_ms is not None else self.default_timeout_ms
        ) / 1000.0
        request = ServeRequest(
            question=question,
            database_id=database_id,
            beam_size=int(beam_size) if beam_size is not None else runtime.beam_size,
            execute=execute,
            inject_failure=inject_failure and self.allow_failure_injection,
            deadline=now + timeout_s,
            enqueued_at=now,
            tenant_id=tenant_id,
            tenant_weight=max(1, int(tenant_weight)),
            dialect=dialect_name,
        )
        try:
            self._queue.push(
                request.tenant_id, request, weight=request.tenant_weight
            )
        except LaneBacklogFull as exc:
            self._rejected_backlog.inc()
            raise QueueFullError(str(exc)) from None
        except queue.Full as exc:
            self._rejected_total.inc()
            raise QueueFullError(str(exc)) from None
        self._requests_total.inc()
        if tenant_id is not None:
            self._tenant_requests.labels(tenant_id).inc()
        self._queue_depth.set(self._queue.qsize())
        return request

    def translate(self, question: str, database_id: str | None = None, **kwargs) -> ServeResponse:
        """Closed-loop convenience: submit and wait for the response."""
        request = self.submit(question, database_id, **kwargs)
        budget = max(0.0, request.deadline - time.monotonic())
        # Workers enforce the deadline; the wait cap only guards against a
        # wedged worker, so it is generous.
        if not request.done.wait(timeout=budget + 60.0):
            return ServeResponse(
                question=question,
                database_id=request.database_id,
                error="internal timeout: no worker picked up the request",
                engine="none",
            )
        assert request.response is not None
        return request.response

    # ------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        pending: ServeRequest | None = None
        while True:
            first = pending if pending is not None else self._queue.pop()
            pending = None
            if first is _SHUTDOWN:
                return
            batch = [first]
            window_end = time.monotonic() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = window_end - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.pop(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _SHUTDOWN:
                    # Re-post for a sibling worker; finish this batch first.
                    self._queue.push_control(_SHUTDOWN)
                    break
                if (
                    nxt.database_id == first.database_id
                    and nxt.beam_size == first.beam_size
                ):
                    batch.append(nxt)
                else:
                    pending = nxt  # seeds this worker's next batch
                    break
            self._queue_depth.set(self._queue.qsize())
            self._process_batch(batch)

    # taint: source (batch holds requests the HTTP thread queued; the queue hop breaks the static call chain)
    def _process_batch(self, batch: list[ServeRequest]) -> None:
        for _ in batch:
            self._inflight.inc()
        try:
            # Everything after the inflight accounting runs under the
            # shield — even the runtime lookup and histogram observe — so
            # no exception can kill the worker thread with requests of
            # this batch still unresolved.
            self._batch_hist.observe(float(len(batch)))
            runtime = self.runtimes[batch[0].database_id]
            self._process_batch_inner(runtime, batch)
        except Exception as exc:  # never let a worker die
            self._internal_errors.inc()
            for request in batch:
                if request.done.is_set():
                    continue
                response = ServeResponse(
                    question=request.question,
                    database_id=request.database_id,
                    error=f"internal error: {exc}",
                    engine="none",
                    tenant_id=request.tenant_id,
                )
                self._record(response)
                request.resolve(response)
        finally:
            for _ in batch:
                self._inflight.dec()

    def _process_batch_inner(
        self, runtime: DatabaseRuntime, batch: list[ServeRequest]
    ) -> None:
        """Triage every request, run ONE batched model call, finalize.

        Phase 1 answers cache hits immediately and classifies the rest:
        injected failures and already-expired requests go straight to
        the fallback; the remainder form the model micro-batch.  Phase 2
        translates that micro-batch with a single fused encoder pass.
        Phase 3 applies the per-request deadline/degradation/caching
        semantics unchanged from the sequential implementation.
        """
        size = len(batch)
        picked_up = time.monotonic()
        pending: list[_BatchEntry] = []
        model_entries: list[_BatchEntry] = []
        for request in batch:
            queue_wait = picked_up - request.enqueued_at
            self._queue_wait.observe(queue_wait)
            response = ServeResponse(
                question=request.question,
                database_id=request.database_id,
                queue_ms=1000.0 * queue_wait,
                batch_size=size,
                tenant_id=request.tenant_id,
                dialect=request.dialect,
            )
            key = CacheKey.make(
                request.database_id,
                request.question,
                request.beam_size,
                request.dialect,
            )
            cached = self.cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                response.sql = cached["sql"]
                response.timings = dict(cached["timings"])
                response.engine = "cache"
                response.cache_hit = True
                # Policy configs differ per tenant, so a cached answer is
                # re-checked with THIS request's tenant context (on the
                # canonical SQLite form, which the AST rules parse).
                execute_sql = cached.get("execute_sql", cached["sql"])
                blocked = self._check_policy(runtime, request, response, execute_sql)
                if not blocked and request.execute:
                    self._execute_rows(
                        runtime,
                        response,
                        sql=execute_sql,
                        tenant_id=request.tenant_id,
                    )
                response.service_ms = 1000.0 * (time.monotonic() - picked_up)
                self._record(response)
                request.resolve(response)
                continue
            self._cache_misses.inc()
            entry = _BatchEntry(request=request, response=response, key=key)
            pending.append(entry)
            if request.inject_failure:
                response.degraded = True
                response.degraded_reason = "injected"
            elif picked_up >= request.deadline:
                response.degraded = True
                response.degraded_reason = "deadline"
            elif runtime.has_model:
                model_entries.append(entry)

        if model_entries:
            # One call for the whole micro-batch: the worker already
            # grouped by database + beam size, so a single fused encode
            # serves every entry.
            try:
                results = runtime.translate_batch(
                    [entry.request.question for entry in model_entries],
                    execute=[entry.request.execute for entry in model_entries],
                    beam_size=batch[0].beam_size,
                    encode_observer=self._observe_encode,
                )
            except Exception as exc:
                self._model_errors.inc()
                for entry in model_entries:
                    entry.response.degraded = True
                    entry.response.degraded_reason = "model_error"
                    entry.response.error = str(exc)
            else:
                for entry, result in zip(model_entries, results):
                    if result.error is not None:
                        entry.response.degraded = True
                        entry.response.degraded_reason = "model_error"
                        entry.response.error = result.error
                    else:
                        entry.result = result

        for entry in pending:
            try:
                self._finalize(runtime, entry, picked_up)
            except Exception as exc:
                self._internal_errors.inc()
                entry.response = ServeResponse(
                    question=entry.request.question,
                    database_id=entry.request.database_id,
                    error=f"internal error: {exc}",
                    engine="none",
                    tenant_id=entry.request.tenant_id,
                )
            self._record(entry.response)
            entry.request.resolve(entry.response)

    def _observe_encode(self, seconds: float, batch_size: int) -> None:
        self._encode_batch_hist.observe(seconds)

    def _finalize(
        self, runtime: DatabaseRuntime, entry: "_BatchEntry", picked_up: float
    ) -> None:
        request, response = entry.request, entry.response
        result = entry.result
        if result is None and not response.degraded and not runtime.has_model:
            # No model configured: the heuristic IS the primary engine.
            result = runtime.translate_fallback(
                request.question, execute=request.execute
            )
            response.engine = "heuristic"

        if response.degraded:
            result = runtime.translate_fallback(
                request.question, execute=request.execute
            )
            response.engine = "heuristic"
            response.error = result.error  # fallback outcome supersedes

        assert result is not None
        response.sql = result.sql
        response.rows = result.rows
        if result.error is not None:
            response.error = result.error
        response.timings = result.timings.as_dict()

        # Policy runs on the canonical SQLite form (what would execute);
        # only a clean query is re-rendered into the requested dialect.
        sqlite_sql = response.sql
        if self._check_policy(runtime, request, response, sqlite_sql):
            response.rows = None  # discard anything executed upstream
        elif request.dialect != DEFAULT_DIALECT and sqlite_sql is not None:
            response.sql = self._render_for_dialect(
                runtime, request, response, sqlite_sql
            )

        finished = time.monotonic()
        if (
            response.engine == "model"
            and finished > request.deadline
            and not response.degraded
        ):
            # The model answer arrived late; return it but flag the breach.
            response.degraded = True
            response.degraded_reason = "late"
        response.service_ms = 1000.0 * (finished - picked_up)

        if response.ok and not response.degraded:
            self.cache.put(
                entry.key,
                {
                    "sql": response.sql,
                    # Canonical form for re-execution and policy re-checks
                    # on later cache hits (== sql for the SQLite dialect).
                    "execute_sql": sqlite_sql,
                    "timings": response.timings,
                },
            )

    def _check_policy(
        self,
        runtime: DatabaseRuntime,
        request: ServeRequest,
        response: ServeResponse,
        sql: str | None,
    ) -> bool:
        """Validate ``sql`` for this request's tenant; True when blocked.

        A blocked response carries the structured violations in
        ``response.policy`` (the HTTP layer maps it to a 403 with the
        machine-readable rule id) and the engine counts it in the
        tenant-labeled ``policy_blocked_total`` metric.
        """
        if self.policy is None or sql is None:
            return False
        database = getattr(runtime, "database", None)  # test fakes lack it
        try:
            self.policy.check_sql(
                sql,
                database_id=request.database_id,
                tenant_id=request.tenant_id,
                schema=database.schema if database is not None else None,
                graph=getattr(runtime, "schema_graph", None),
            )
        except PolicyViolationError as exc:
            response.policy = exc.as_dict()
            response.error = str(exc)
            return True
        return False

    def _render_for_dialect(
        self,
        runtime: DatabaseRuntime,
        request: ServeRequest,
        response: ServeResponse,
        sqlite_sql: str,
    ) -> str | None:
        """Re-render canonical SQLite SQL into the requested dialect.

        Returns the rendered SQL, or ``None`` with ``response.error`` set
        when the generated SQL cannot be re-parsed (outside our subset).
        """
        database = getattr(runtime, "database", None)
        graph = getattr(runtime, "schema_graph", None)
        if database is None or graph is None:
            response.error = (
                f"dialect {request.dialect!r} unavailable: runtime has no schema"
            )
            return None
        from repro.sql.parser import parse_sql
        from repro.sql.render import render_sql

        try:
            query = parse_sql(sqlite_sql, database.schema)
            return render_sql(query, graph, request.dialect)
        except ReproError as exc:
            response.error = f"dialect rendering failed: {exc}"
            return None

    def _execute_rows(
        self,
        runtime: DatabaseRuntime,
        response: ServeResponse,
        *,
        sql: str | None = None,
        tenant_id: str | None = None,
    ) -> None:
        target = sql if sql is not None else response.sql
        try:
            if isinstance(runtime, DatabaseRuntime):
                response.rows = runtime.execute_sql(target, tenant_id=tenant_id)
                return
            execute = getattr(runtime, "execute_sql", None)  # test fakes lack it
            if execute is not None:
                response.rows = execute(target)
            else:
                # Even the fake-runtime path goes through the budgeted
                # executor: it is the one gate that unconditionally
                # rejects multi-statement strings, and TAINT-SQL forbids
                # handing generated SQL straight to the database.
                from repro.db.executor import execute_with_budget

                response.rows = execute_with_budget(
                    runtime.database, target, timeout_s=None
                )
        except PolicyViolationError as exc:
            # The runtime-level final gate fired (only reachable when the
            # service itself has no engine but the runtime does).
            response.policy = exc.as_dict()
            response.error = str(exc)
        except Exception as exc:
            self._execution_errors.inc()
            response.error = f"execution failed: {exc}"

    # ------------------------------------------------------------ recording

    def _record(self, response: ServeResponse) -> None:
        if response.ok:
            self._responses_ok.inc()
        else:
            self._responses_error.inc()
        if response.degraded:
            self._responses_degraded.inc()
        self._latency.observe(response.service_ms / 1000.0)
        if response.tenant_id is not None:
            self._tenant_latency.labels(response.tenant_id).observe(
                response.service_ms / 1000.0
            )
        if response.cache_hit:
            return  # cached timings describe work that did not run now
        for stage, seconds in response.timings.items():
            hist = self._stage_hists.get(stage)
            if hist is not None and seconds > 0.0:
                hist.observe(seconds)

    # ------------------------------------------------------------- health

    def health(self) -> dict:
        return {
            "status": "stopping" if self._stopping else (
                "ok" if self._started else "idle"),
            "ready": self.is_ready(),
            "uptime_s": time.monotonic() - self._started_monotonic,
            "databases": sorted(self.runtimes),
            "workers": self.workers,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self._queue.maxsize,
            "queue_lanes": self._queue.lanes(),
            "cache": self.cache.stats(),
            "evolve": (
                self.refresher.stats() if self.refresher is not None else None
            ),
        }
