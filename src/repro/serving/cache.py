"""LRU + TTL result cache for translations.

Keys are ``(database_id, normalized_question, beam_size, dialect)`` — the
inputs that fully determine a translation for a fixed model — so repeated
questions (the common interactive pattern: users iterate on phrasings and
re-ask) skip the neural pipeline entirely.  Entries expire after a TTL so
a re-loaded database cannot serve stale SQL forever, and the cache keeps
hit/miss/expiration accounting for the metrics registry.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

from repro.concurrency import make_lock


def normalize_question(question: str) -> str:
    """Collapse case/whitespace and trailing punctuation so trivially
    rephrased duplicates share a cache entry."""
    collapsed = " ".join(question.strip().lower().split())
    return collapsed.rstrip(" ?.!")


@dataclass(frozen=True)
class CacheKey:
    database_id: str
    question: str
    beam_size: int
    dialect: str = "sqlite"

    @classmethod
    def make(
        cls,
        database_id: str,
        question: str,
        beam_size: int,
        dialect: str = "sqlite",
    ) -> "CacheKey":
        return cls(
            database_id, normalize_question(question), int(beam_size), str(dialect)
        )


class TranslationCache:
    """Thread-safe LRU cache with per-entry TTL.

    Args:
        capacity: maximum number of entries; the least recently *used*
            entry is evicted when full.
        ttl_s: entry lifetime in seconds; ``None`` disables expiry.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_s: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: OrderedDict[CacheKey, tuple[object, float]] = OrderedDict()  # guarded by: _lock
        self._lock = make_lock("TranslationCache._lock")
        self.hits = 0  # guarded by: _lock
        self.misses = 0  # guarded by: _lock
        self.expirations = 0  # guarded by: _lock
        self.evictions = 0  # guarded by: _lock
        self.invalidations = 0  # guarded by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: CacheKey) -> object | None:
        """The cached value, or ``None`` on miss/expiry (counted apart)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            value, expires_at = entry
            if self.ttl_s is not None and self._clock() >= expires_at:
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: CacheKey, value: object) -> None:
        expires_at = (
            self._clock() + self.ttl_s if self.ttl_s is not None else float("inf")
        )
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            elif len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = (value, expires_at)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def invalidate_database(self, database_id: str) -> int:
        """Drop every entry keyed to ``database_id``; returns the count.

        Called on an index swap so no stale translation outlives a schema
        change — entries of *other* databases are untouched (a global
        ``clear()`` would needlessly cold-start every hot database on one
        database's drift).
        """
        with self._lock:
            doomed = [
                key for key in self._entries if key.database_id == database_id
            ]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        # One critical section: size and the counters come from the same
        # instant, and hit_rate is derived inline (calling the property
        # here would re-take the non-reentrant lock).
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "expirations": self.expirations,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": self.hits / total if total else 0.0,
            }
