"""Stdlib (threaded) HTTP front-end for the translation service.

Endpoints (all JSON unless noted):

* ``GET  /healthz``  — combined health snapshot (always 200 once a
  service is attached; the detail lives in the body).
* ``GET  /livez``    — liveness only: 200 whenever the process can
  answer HTTP at all.  Restart the instance when this fails.
* ``GET  /readyz``   — readiness: 503 until the backing service exists
  *and* reports ready (index warm-up finished, not draining).  Load
  balancers should route on this, not on ``/healthz``, so cold or
  draining instances receive no traffic.
* ``GET  /metrics``  — Prometheus text exposition; ``?format=json`` for a
  JSON snapshot with p50/p95/p99 per histogram.
* ``POST /translate`` — body ``{"question": ..., "database_id": ...,
  "beam_size": ..., "execute": ..., "timeout_ms": ...,
  "inject_failure": ..., "dialect": ...}``; only ``question`` is
  required (and ``database_id`` only when serving several databases).
  ``dialect`` selects the SQL flavor of the response
  (``sqlite``/``postgres``/``mysql``).  When a policy engine is
  configured and a rule blocks the query, the response is a 403 whose
  body carries ``"reason": "policy"``, the machine-readable
  ``"rule_id"`` and the structured ``"policy"`` violation list.
* ``GET /tenants`` — admin-only listing of every tenant's config and
  usage (requires an ``admin_keys`` entry; tenancy mode only).
* ``GET /tenants/<id>/usage`` — one tenant's quota/rate/latency view;
  reachable with that tenant's own key or an admin key.

Multi-tenancy: when the backing service carries a
:class:`~repro.tenancy.controller.TenancyController` (``service.tenancy``),
``POST /translate`` requires an API key — ``Authorization: Bearer <key>``
or ``X-API-Key: <key>`` — and runs the full front-door admission check.
Rejections: 401 for missing/unknown/disabled keys, 429 with a
``Retry-After`` header when the tenant is over its rate (token bucket)
or daily quota; the body's ``"reason"`` field distinguishes the two.
Without a controller the server behaves exactly as before (anonymous,
no auth).

Status codes: 200 on success (including degraded responses — the
degradation contract lives in the body, not the status), 400 on malformed
requests, 401/403 on auth failures (403 also carries policy blocks —
the body's ``"reason"`` distinguishes), 404 on unknown paths or databases,
413 on oversized request bodies, 429 on per-tenant limits, 503 when load
is shed (queue full, service stopping/warming, or — in cluster mode — no
live worker for the shard).  Every 503 body carries ``"retriable": true``:
the request was *not* processed and may safely be retried elsewhere.

The actual route logic lives in :mod:`repro.serving.routes`, shared
byte-for-byte with the selectors-based implementation in
:mod:`repro.serving.async_http`; this module is only the
thread-per-connection transport around it.  Pick an implementation with
``repro serve --http-impl {threaded,async}`` (threaded remains the
default and the fallback).

The server may be constructed before its service exists
(``service=None``) and bound to one later via :meth:`ServingServer.attach`;
until then it is live but not ready and sheds all translate traffic.
This lets deployments open the port (and pass liveness probes) while
index warm-up is still running.
"""

from __future__ import annotations

from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving import routes
from repro.serving.routes import (  # noqa: F401  (re-exported, public API)
    MAX_BODY_BYTES,
    tenant_latency_stats,
)
from repro.serving.service import TranslationService


class ServingRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"
    # Headers and body go out in separate writes; without TCP_NODELAY the
    # second write stalls behind the peer's delayed ACK (~40 ms per
    # response on loopback).  The async front door sets it too.
    disable_nagle_algorithm = True

    @property
    def service(self) -> TranslationService | None:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _write(self, response: routes.Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:  # noqa: N802
        self._write(routes.handle(self.service, "GET", self.path, self.headers, None))

    def do_POST(self) -> None:  # noqa: N802
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._write(routes.error_response(400, "bad Content-Length"))
            return
        if length > MAX_BODY_BYTES:
            # Refused before reading: the connection is closed (the body
            # is still in flight), which HTTP/1.1 permits for 413.
            self.close_connection = True
            self._write(routes.body_too_large())
            return
        body = self.rfile.read(length) if length > 0 else b""
        self._write(
            routes.handle(self.service, "POST", self.path, self.headers, body)
        )


class ServingServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`TranslationService`.

    ``service`` may also be any object with the same duck-typed surface
    (``translate``, ``health``, ``metrics``, ``is_ready``) — the cluster
    front-end reuses this server unchanged — or ``None`` to open the
    port before the service exists (attach one later with
    :meth:`attach`).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: TranslationService | None,
        *,
        verbose: bool = False,
    ):
        super().__init__(address, ServingRequestHandler)
        self.service = service
        self.verbose = verbose

    def attach(self, service) -> None:
        """Bind a (possibly late-built) service; flips readiness wiring."""
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"
