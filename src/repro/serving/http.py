"""Stdlib HTTP front-end for the translation service.

Endpoints (all JSON unless noted):

* ``GET  /healthz``  — combined health snapshot (always 200 once a
  service is attached; the detail lives in the body).
* ``GET  /livez``    — liveness only: 200 whenever the process can
  answer HTTP at all.  Restart the instance when this fails.
* ``GET  /readyz``   — readiness: 503 until the backing service exists
  *and* reports ready (index warm-up finished, not draining).  Load
  balancers should route on this, not on ``/healthz``, so cold or
  draining instances receive no traffic.
* ``GET  /metrics``  — Prometheus text exposition; ``?format=json`` for a
  JSON snapshot with p50/p95/p99 per histogram.
* ``POST /translate`` — body ``{"question": ..., "database_id": ...,
  "beam_size": ..., "execute": ..., "timeout_ms": ...,
  "inject_failure": ..., "dialect": ...}``; only ``question`` is
  required (and ``database_id`` only when serving several databases).
  ``dialect`` selects the SQL flavor of the response
  (``sqlite``/``postgres``/``mysql``).  When a policy engine is
  configured and a rule blocks the query, the response is a 403 whose
  body carries ``"reason": "policy"``, the machine-readable
  ``"rule_id"`` and the structured ``"policy"`` violation list.
* ``GET /tenants`` — admin-only listing of every tenant's config and
  usage (requires an ``admin_keys`` entry; tenancy mode only).
* ``GET /tenants/<id>/usage`` — one tenant's quota/rate/latency view;
  reachable with that tenant's own key or an admin key.

Multi-tenancy: when the backing service carries a
:class:`~repro.tenancy.controller.TenancyController` (``service.tenancy``),
``POST /translate`` requires an API key — ``Authorization: Bearer <key>``
or ``X-API-Key: <key>`` — and runs the full front-door admission check.
Rejections: 401 for missing/unknown/disabled keys, 429 with a
``Retry-After`` header when the tenant is over its rate (token bucket)
or daily quota; the body's ``"reason"`` field distinguishes the two.
Without a controller the server behaves exactly as before (anonymous,
no auth).

Status codes: 200 on success (including degraded responses — the
degradation contract lives in the body, not the status), 400 on malformed
requests, 401/403 on auth failures (403 also carries policy blocks —
the body's ``"reason"`` distinguishes), 404 on unknown paths or databases,
429 on per-tenant limits, 503 when load is shed (queue full, service
stopping/warming, or — in cluster mode — no live worker for the shard).
Every 503 body carries ``"retriable": true``: the request was *not*
processed and may safely be retried elsewhere.

The server may be constructed before its service exists
(``service=None``) and bound to one later via :meth:`ServingServer.attach`;
until then it is live but not ready and sheds all translate traffic.
This lets deployments open the port (and pass liveness probes) while
index warm-up is still running.  Served by
:class:`http.server.ThreadingHTTPServer` — one thread per connection, all
funneling into the service's bounded queue.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.serving.metrics import quantile_from_snapshot, series_key
from repro.serving.service import (
    QueueFullError,
    ServiceStoppedError,
    TranslationService,
    UnknownDatabaseError,
)
from repro.tenancy.controller import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
)

MAX_BODY_BYTES = 64 * 1024


def _retry_after_header(seconds: float) -> str:
    """Retry-After is an integer header; round up so clients never retry
    early and immediately eat another 429."""
    return str(max(1, math.ceil(seconds)))


def tenant_latency_stats(service, tenant_id: str) -> dict:
    """p50/p95/p99 (+count) of one tenant's in-service latency, in ms.

    Works against both a single-process registry snapshot and the
    cluster's ``{"fleet": ...}`` merged snapshot.
    """
    snap = service.metrics.snapshot()
    snap = snap.get("fleet", snap)
    hist = snap.get(series_key("tenant_latency_seconds", "tenant", tenant_id))
    if not isinstance(hist, dict):
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
    return {
        "count": hist.get("count", 0),
        "p50_ms": 1000.0 * quantile_from_snapshot(hist, 0.50),
        "p95_ms": 1000.0 * quantile_from_snapshot(hist, 0.95),
        "p99_ms": 1000.0 * quantile_from_snapshot(hist, 0.99),
    }


class ServingRequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> TranslationService | None:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    # ------------------------------------------------------------ plumbing

    def _send_json(
        self, status: int, payload: dict, *, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _service_ready(self) -> tuple[bool, str]:
        service = self.service
        if service is None:
            return False, "service not attached (warming up)"
        is_ready = getattr(service, "is_ready", None)
        if is_ready is not None and not is_ready():
            return False, "service is not ready"
        return True, "ok"

    # ------------------------------------------------------------- tenancy

    @property
    def tenancy(self):
        """The service's TenancyController, or None (anonymous mode)."""
        return getattr(self.service, "tenancy", None)

    def _api_key(self) -> str | None:
        """Extract the API key: ``Authorization: Bearer`` or ``X-API-Key``."""
        auth = self.headers.get("Authorization", "")
        if auth.lower().startswith("bearer "):
            return auth[len("bearer "):].strip() or None
        key = self.headers.get("X-API-Key", "")
        return key.strip() or None

    def _tenant_usage_payload(self, tenant_id: str) -> dict | None:
        usage = self.tenancy.usage(tenant_id)
        if usage is None:
            return None
        usage["latency"] = tenant_latency_stats(self.service, tenant_id)
        return usage

    def _handle_tenants_get(self, path: str) -> None:
        controller = self.tenancy
        if controller is None:
            self._send_json(404, {"error": "tenancy is not enabled"})
            return
        key = self._api_key()
        if path == "/tenants":
            if not controller.is_admin(key):
                self._send_json(
                    403 if key else 401,
                    {"error": "admin API key required"},
                )
                return
            overview = controller.overview()
            for entry in overview["tenants"]:
                if entry is not None:
                    entry["latency"] = tenant_latency_stats(
                        self.service, entry["id"]
                    )
            self._send_json(200, overview)
            return
        # /tenants/<id>/usage
        parts = path.strip("/").split("/")
        if len(parts) != 3 or parts[2] != "usage":
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        tenant_id = parts[1]
        if not controller.is_admin(key):
            try:
                tenant = controller.authenticate(key)
            except AuthenticationError:
                self._send_json(401, {"error": "valid API key required"})
                return
            if tenant.tenant_id != tenant_id:
                self._send_json(
                    403, {"error": "key does not match this tenant"}
                )
                return
        payload = self._tenant_usage_payload(tenant_id)
        if payload is None:
            self._send_json(404, {"error": f"unknown tenant {tenant_id!r}"})
            return
        self._send_json(200, payload)

    # ------------------------------------------------------------ handlers

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        service = self.service
        if parsed.path == "/livez":
            self._send_json(200, {"live": True})
        elif parsed.path == "/readyz":
            ready, reason = self._service_ready()
            if ready:
                self._send_json(200, {"ready": True})
            else:
                self._send_json(503, {"ready": False, "reason": reason,
                                      "retriable": True})
        elif parsed.path == "/healthz":
            if service is None:
                self._send_json(200, {"status": "starting", "ready": False})
            else:
                self._send_json(200, service.health())
        elif parsed.path == "/metrics":
            if service is None:
                self._send_text(200, "", "text/plain; version=0.0.4; charset=utf-8")
                return
            params = parse_qs(parsed.query)
            if params.get("format", [""])[0] == "json":
                self._send_json(200, service.metrics.snapshot())
            else:
                self._send_text(
                    200,
                    service.metrics.render_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
        elif parsed.path == "/tenants" or parsed.path.startswith("/tenants/"):
            self._handle_tenants_get(parsed.path)
        else:
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path != "/translate":
            self._send_json(404, {"error": f"unknown path {parsed.path!r}"})
            return
        service = self.service
        if service is None:
            self._send_json(
                503, {"error": "service is warming up", "retriable": True}
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_json(400, {"error": "body required (<= 64 KiB)"})
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"})
            return
        if not isinstance(payload, dict) or not isinstance(
            payload.get("question"), str
        ):
            self._send_json(400, {"error": 'body must include a string "question"'})
            return
        tenant_kwargs: dict = {}
        controller = self.tenancy
        if controller is not None:
            try:
                tenant = controller.admit(self._api_key())
            except AuthenticationError as exc:
                self._send_json(
                    401,
                    {"error": str(exc), "reason": "auth"},
                    headers={"WWW-Authenticate": "Bearer"},
                )
                return
            except RateLimitedError as exc:
                self._send_json(
                    429,
                    {"error": str(exc), "reason": "rate_limited",
                     "retriable": True},
                    headers={"Retry-After": _retry_after_header(exc.retry_after_s)},
                )
                return
            except QuotaExceededError as exc:
                self._send_json(
                    429,
                    {"error": str(exc), "reason": "quota",
                     "retriable": False},
                    headers={"Retry-After": _retry_after_header(exc.retry_after_s)},
                )
                return
            tenant_kwargs = {
                "tenant_id": tenant.tenant_id,
                "tenant_weight": tenant.weight,
            }
        try:
            response = service.translate(
                payload["question"],
                payload.get("database_id"),
                beam_size=payload.get("beam_size"),
                execute=bool(payload.get("execute", False)),
                timeout_ms=payload.get("timeout_ms"),
                inject_failure=bool(payload.get("inject_failure", False)),
                dialect=payload.get("dialect"),
                **tenant_kwargs,
            )
        except UnknownDatabaseError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        except (QueueFullError, ServiceStoppedError) as exc:
            self._send_json(503, {"error": str(exc), "retriable": True})
            return
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": f"bad request parameters: {exc}"})
            return
        if getattr(response, "policy", None) is not None:
            # Policy-blocked: a structured 4xx carrying the machine-readable
            # rule id(s); the query was NOT executed.
            body = response.as_dict()
            body["reason"] = "policy"
            body["rule_id"] = response.policy.get("rule_id")
            self._send_json(403, body)
            return
        self._send_json(200, response.as_dict())


class ServingServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`TranslationService`.

    ``service`` may also be any object with the same duck-typed surface
    (``translate``, ``health``, ``metrics``, ``is_ready``) — the cluster
    front-end reuses this server unchanged — or ``None`` to open the
    port before the service exists (attach one later with
    :meth:`attach`).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: TranslationService | None,
        *,
        verbose: bool = False,
    ):
        super().__init__(address, ServingRequestHandler)
        self.service = service
        self.verbose = verbose

    def attach(self, service) -> None:
        """Bind a (possibly late-built) service; flips readiness wiring."""
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"
