"""Compatibility shim: the metrics layer moved to :mod:`repro.metrics`.

The registry started life inside the serving package, but the policy
engine, the tenancy controller, the KB refresher, and the cluster
supervisor all record into it — metrics are a foundation concern, not a
serving one, and the old location forced architectural back-edges
(``policy -> serving``, ``tenancy -> serving``, ...) that the LAYERING
analysis now forbids.  Import from :mod:`repro.metrics`; this module
stays so existing callers and tests keep working.
"""

from repro.metrics import (  # noqa: F401
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledCounter,
    LabeledHistogram,
    MetricsRegistry,
    merge_snapshots,
    quantile_from_snapshot,
    render_snapshot_text,
    series_key,
    split_series_key,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounter",
    "LabeledHistogram",
    "MetricsRegistry",
    "merge_snapshots",
    "quantile_from_snapshot",
    "render_snapshot_text",
    "series_key",
    "split_series_key",
]
