"""Selectors-based non-blocking HTTP/1.1 front door.

One event-loop thread owns every connection: it accepts, enforces
read deadlines, parses requests (request line, headers, Content-Length
*and* chunked bodies) incrementally as bytes arrive, and writes
responses — no thread per connection, no stack per idle keep-alive
client.  Translate work (the only blocking route) is handed to a small
worker pool; completions come back to the loop over a self-pipe wakeup
so the loop never blocks on anything but ``select``.

Route logic is NOT here: every fully-read request goes through
:func:`repro.serving.routes.handle`, the same code the threaded server
uses, so the two implementations return byte-identical bodies (locked
by ``tests/test_http_differential.py``).

Protocol behavior:

* **Keep-alive / pipelining** — HTTP/1.1 persistent connections by
  default; ``Connection: close`` honored.  Pipelined requests are
  parsed one at a time and answered strictly in order: the next request
  is not parsed until the previous response has been fully written.
* **Slowloris** — a connection must deliver complete headers within
  ``header_deadline_s`` of the first byte of a request, and the body
  within ``body_deadline_s`` of the headers; idle keep-alive
  connections are closed after ``idle_deadline_s``.  All deadlines are
  monotonic (never ``time.time()``).
* **Bounds** — at most ``max_connections`` concurrent sockets (the
  listener stops accepting at the cap and resumes as connections
  close); request bodies over ``MAX_BODY_BYTES`` are refused with 413
  *before* the body is read; header blocks are capped at 32 KiB.
* **Graceful drain** — :meth:`shutdown` stops accepting, closes idle
  keep-alive connections, lets in-flight requests finish (their
  responses carry ``Connection: close``), and force-closes stragglers
  after ``drain_grace_s``.

The public surface mirrors :class:`repro.serving.http.ServingServer`
(``serve_forever`` / ``shutdown`` / ``server_close`` / ``attach`` /
``url`` / ``server_address``) so the CLI and scripts can swap
implementations via ``repro serve --http-impl async``.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.concurrency import make_lock
from repro.serving import routes

_MAX_HEADER_BYTES = 32 * 1024
# Stop reading from a connection whose buffered-but-unparsed input
# exceeds this while a request is still being processed (pipelining
# back-pressure); reading resumes once the response drains.
_MAX_PIPELINE_BUFFER = 256 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    503: "Service Unavailable",
}

# Connection parse phases.
_IDLE = 0          # between requests (keep-alive) or brand new
_HEADERS = 1       # reading the request head
_BODY = 2          # reading a fixed-length body
_CHUNKED = 3       # reading a chunked body
_PROCESSING = 4    # request handed off / response being written


class _HeaderView:
    """Case-insensitive read view over parsed request headers."""

    __slots__ = ("_items",)

    def __init__(self, items: dict[str, str]):
        self._items = items  # keys already lower-cased

    def get(self, name: str, default=None):
        return self._items.get(name.lower(), default)


class _Connection:
    __slots__ = (
        "sock", "fd", "inbuf", "instart", "outbuf", "outstart", "phase",
        "deadline", "want_close", "closing", "busy", "parsing", "registered",
        "generation", "method", "target", "headers", "body_remaining",
        "body", "chunk_state", "chunk_need", "requests_served",
    )

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.instart = 0          # parse offset into inbuf
        self.outbuf = bytearray()
        self.outstart = 0         # write offset into outbuf
        self.phase = _IDLE
        self.deadline: float | None = None
        self.want_close = False   # next response carries Connection: close
        self.closing = False      # close as soon as outbuf drains
        self.busy = False         # a request is in flight (ordering gate)
        self.parsing = False      # re-entrancy guard for _parse
        self.registered = True    # currently registered with the selector
        self.generation = 0       # bumped on close; stale completions drop
        self.method = ""
        self.target = ""
        self.headers: _HeaderView | None = None
        self.body_remaining = 0
        self.body = bytearray()
        self.chunk_state = 0      # 0 = size line, 1 = data, 2 = trailers
        self.chunk_need = 0
        self.requests_served = 0

    def compact(self) -> None:
        """Drop consumed prefixes so buffers do not grow without bound."""
        if self.instart:
            del self.inbuf[: self.instart]
            self.instart = 0
        if self.outstart:
            del self.outbuf[: self.outstart]
            self.outstart = 0


class AsyncServingServer:
    """Non-blocking HTTP/1.1 server over one ``selectors`` event loop.

    Drop-in alternative to :class:`repro.serving.http.ServingServer`;
    same constructor shape, same lifecycle methods, same duck-typed
    ``service``.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service,
        *,
        verbose: bool = False,
        max_connections: int = 512,
        worker_threads: int = 8,
        header_deadline_s: float = 10.0,
        body_deadline_s: float = 30.0,
        idle_deadline_s: float = 75.0,
        drain_grace_s: float = 5.0,
    ):
        self.service = service
        self.verbose = verbose
        self.max_connections = max_connections
        self.header_deadline_s = header_deadline_s
        self.body_deadline_s = body_deadline_s
        self.idle_deadline_s = idle_deadline_s
        self.drain_grace_s = drain_grace_s

        self._listener = socket.create_server(address, reuse_port=False)
        self._listener.setblocking(False)
        self.server_address = self._listener.getsockname()

        self._selector = selectors.DefaultSelector()
        self._conns: dict[int, _Connection] = {}
        self._accepting = False
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, worker_threads),
            thread_name_prefix="async-http-worker",
        )
        # Self-pipe: worker threads push completed responses and poke
        # the loop out of select().
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        self._wake_send.setblocking(False)
        self._completions_lock = make_lock("AsyncServingServer._completions_lock")
        self._completions: deque = deque()  # guarded by: _completions_lock
        self._shutdown_requested = threading.Event()
        self._stopped = threading.Event()
        self._draining = False
        self._drain_deadline: float | None = None
        # Loop-thread-only counters (no lock: single writer).
        self.connections_accepted = 0
        self.requests_handled = 0

    # ------------------------------------------------------------ lifecycle

    def attach(self, service) -> None:
        """Bind a (possibly late-built) service; flips readiness wiring."""
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """Run the event loop until :meth:`shutdown` completes a drain."""
        self._selector.register(self._wake_recv, selectors.EVENT_READ, "wake")
        self._set_accepting(True)
        try:
            while True:
                if self._shutdown_requested.is_set() and not self._draining:
                    self._begin_drain()
                if self._draining and self._drain_complete():
                    break
                timeout = self._next_timeout(poll_interval)
                for key, events in self._selector.select(timeout):
                    if key.data == "wake":
                        self._drain_wakeups()
                    elif key.data == "accept":
                        self._accept_ready()
                    else:
                        self._conn_ready(key.data, events)
                self._expire_deadlines()
        finally:
            for conn in list(self._conns.values()):
                self._close_conn(conn)
            self._set_accepting(False)
            try:
                self._selector.unregister(self._wake_recv)
            except KeyError:
                pass
            self._stopped.set()

    def shutdown(self) -> None:
        """Request a graceful drain; blocks until the loop has exited."""
        self._shutdown_requested.set()
        self._wake()
        self._stopped.wait()

    def server_close(self) -> None:
        self._pool.shutdown(wait=False)
        for sock in (self._listener, self._wake_recv, self._wake_send):
            try:
                sock.close()
            except OSError:
                pass
        self._selector.close()

    # ----------------------------------------------------------- event loop

    def _wake(self) -> None:
        try:
            self._wake_send.send(b"x")
        except (BlockingIOError, OSError):
            pass  # pipe full = a wakeup is already pending

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_recv.recv(4096):
                pass
        except BlockingIOError:
            pass
        while True:
            with self._completions_lock:
                if not self._completions:
                    break
                conn, generation, response = self._completions.popleft()
            if conn.generation == generation and conn.fd in self._conns:
                self._finish_request(conn, response)

    def _next_timeout(self, poll_interval: float) -> float:
        now = time.monotonic()
        nearest = now + poll_interval
        for conn in self._conns.values():
            if conn.deadline is not None and conn.deadline < nearest:
                nearest = conn.deadline
        if self._drain_deadline is not None and self._drain_deadline < nearest:
            nearest = self._drain_deadline
        return max(0.0, nearest - now)

    def _set_accepting(self, on: bool) -> None:
        if on and not self._accepting:
            self._selector.register(self._listener, selectors.EVENT_READ, "accept")
            self._accepting = True
        elif not on and self._accepting:
            try:
                self._selector.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._accepting = False

    def _accept_ready(self) -> None:
        while len(self._conns) < self.max_connections:
            try:
                sock, _addr = self._listener.accept()
            except BlockingIOError:
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _Connection(sock)
            conn.deadline = time.monotonic() + self.idle_deadline_s
            self._conns[conn.fd] = conn
            self._selector.register(sock, selectors.EVENT_READ, conn)
            self.connections_accepted += 1
        # At capacity: stop accepting until a connection closes.
        self._set_accepting(False)

    def _conn_ready(self, conn: _Connection, events: int) -> None:
        if events & selectors.EVENT_WRITE:
            self._flush(conn)
        if conn.fd in self._conns and events & selectors.EVENT_READ:
            self._read(conn)

    def _update_events(self, conn: _Connection) -> None:
        if conn.fd not in self._conns:
            return
        mask = 0
        if len(conn.outbuf) - conn.outstart:
            mask |= selectors.EVENT_WRITE
        buffered_in = len(conn.inbuf) - conn.instart
        if not (conn.busy and buffered_in > _MAX_PIPELINE_BUFFER):
            mask |= selectors.EVENT_READ
        try:
            if mask == 0:
                # Pipelining back-pressure with nothing to write: park
                # the socket entirely until the in-flight request drains.
                if conn.registered:
                    self._selector.unregister(conn.sock)
                    conn.registered = False
            elif conn.registered:
                self._selector.modify(conn.sock, mask, conn)
            else:
                self._selector.register(conn.sock, mask, conn)
                conn.registered = True
        except (KeyError, ValueError, OSError):
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        conn.generation += 1
        self._conns.pop(conn.fd, None)
        if conn.registered:
            conn.registered = False
            try:
                self._selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass
        try:
            conn.sock.close()
        except OSError:
            pass
        if not self._draining:
            self._set_accepting(True)

    # -------------------------------------------------------------- reading

    def _read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        conn.inbuf += data
        if not conn.busy:
            self._parse(conn)
        self._update_events(conn)

    def _parse(self, conn: _Connection) -> None:
        """Advance the request parser as far as the buffer allows.

        Re-entrant calls (a synchronous GET finishing inside the loop)
        no-op: the outermost loop keeps running, so a hundred pipelined
        requests cost iteration, not stack depth.
        """
        if conn.parsing:
            return
        conn.parsing = True
        try:
            while not conn.busy and not conn.closing and conn.fd in self._conns:
                if conn.phase in (_IDLE, _HEADERS):
                    if not self._parse_head(conn):
                        return
                if conn.phase == _BODY:
                    have = len(conn.inbuf) - conn.instart
                    if have < conn.body_remaining:
                        return
                    end = conn.instart + conn.body_remaining
                    conn.body = bytearray(conn.inbuf[conn.instart:end])
                    conn.instart = end
                    self._dispatch(conn)
                elif conn.phase == _CHUNKED:
                    if not self._parse_chunked(conn):
                        return
                else:
                    return
        finally:
            conn.parsing = False

    def _parse_head(self, conn: _Connection) -> bool:
        """Parse request line + headers; True when the head is complete."""
        if conn.phase == _IDLE and len(conn.inbuf) > conn.instart:
            conn.phase = _HEADERS
            conn.deadline = time.monotonic() + self.header_deadline_s
        end = conn.inbuf.find(b"\r\n\r\n", conn.instart)
        if end < 0:
            if len(conn.inbuf) - conn.instart > _MAX_HEADER_BYTES:
                self._reject(conn, 431, "request header block too large")
            return False
        head = bytes(conn.inbuf[conn.instart:end])
        conn.instart = end + 4
        lines = head.split(b"\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith(b"HTTP/1."):
            self._reject(conn, 400, "malformed request line")
            return False
        try:
            conn.method = parts[0].decode("ascii")
            conn.target = parts[1].decode("ascii")
        except UnicodeDecodeError:
            self._reject(conn, 400, "malformed request line")
            return False
        items: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(b":")
            if not sep:
                self._reject(conn, 400, "malformed header line")
                return False
            try:
                items[name.decode("ascii").strip().lower()] = (
                    value.decode("latin-1").strip()
                )
            except UnicodeDecodeError:
                self._reject(conn, 400, "malformed header line")
                return False
        conn.headers = _HeaderView(items)
        if items.get("connection", "").lower() == "close":
            conn.want_close = True
        transfer = items.get("transfer-encoding", "").lower()
        if "chunked" in transfer:
            conn.phase = _CHUNKED
            conn.chunk_state = 0
            conn.body = bytearray()
            conn.deadline = time.monotonic() + self.body_deadline_s
            return True
        raw_length = items.get("content-length", "0")
        try:
            length = int(raw_length)
            if length < 0:
                raise ValueError(raw_length)
        except ValueError:
            self._reject(conn, 400, "bad Content-Length")
            return False
        if length > routes.MAX_BODY_BYTES:
            # Refuse before reading the body; close (it is still in
            # flight and we will not drain it).
            self._reject(conn, None, None, response=routes.body_too_large())
            return False
        conn.body_remaining = length
        conn.body = bytearray()
        conn.phase = _BODY
        conn.deadline = time.monotonic() + self.body_deadline_s
        return True

    def _parse_chunked(self, conn: _Connection) -> bool:
        """Incremental chunked-body decoder; True when the body is done."""
        buf = conn.inbuf
        while True:
            if conn.chunk_state == 0:  # size line
                eol = buf.find(b"\r\n", conn.instart)
                if eol < 0:
                    return False
                size_token = bytes(buf[conn.instart:eol]).split(b";")[0].strip()
                try:
                    size = int(size_token, 16)
                except ValueError:
                    self._reject(conn, 400, "malformed chunk size")
                    return False
                conn.instart = eol + 2
                if size == 0:
                    conn.chunk_state = 2
                    continue
                if len(conn.body) + size > routes.MAX_BODY_BYTES:
                    self._reject(conn, None, None, response=routes.body_too_large())
                    return False
                conn.chunk_need = size
                conn.chunk_state = 1
            elif conn.chunk_state == 1:  # chunk data + trailing CRLF
                have = len(buf) - conn.instart
                if have < conn.chunk_need + 2:
                    return False
                end = conn.instart + conn.chunk_need
                conn.body += buf[conn.instart:end]
                if bytes(buf[end:end + 2]) != b"\r\n":
                    self._reject(conn, 400, "malformed chunk terminator")
                    return False
                conn.instart = end + 2
                conn.chunk_state = 0
            else:  # trailers: consume lines until the empty one
                eol = buf.find(b"\r\n", conn.instart)
                if eol < 0:
                    return False
                line = bytes(buf[conn.instart:eol])
                conn.instart = eol + 2
                if not line:
                    self._dispatch(conn)
                    return True

    # ----------------------------------------------------------- dispatching

    def _dispatch(self, conn: _Connection) -> None:
        conn.busy = True
        conn.deadline = None  # translate has its own service-level timeout
        conn.compact()
        method, target = conn.method, conn.target
        headers, body = conn.headers, bytes(conn.body)
        if method == "POST":
            # Blocking route: run on the pool, complete via self-pipe.
            generation = conn.generation
            service = self.service
            self._pool.submit(
                self._run_in_worker, conn, generation, service, method,
                target, headers, body,
            )
        else:
            self._finish_request(
                conn, routes.handle(self.service, method, target, headers, None)
            )

    def _run_in_worker(
        self, conn, generation, service, method, target, headers, body
    ) -> None:
        try:
            response = routes.handle(service, method, target, headers, body)
        except Exception as exc:  # justified: worker must never die silently
            response = routes.error_response(500, f"internal error: {exc}")
        with self._completions_lock:
            self._completions.append((conn, generation, response))
        self._wake()

    def _finish_request(self, conn: _Connection, response: routes.Response) -> None:
        """Queue the response bytes and re-arm parsing (loop thread only)."""
        self.requests_handled += 1
        conn.requests_served += 1
        close = conn.want_close or self._draining
        self._enqueue_response(conn, response, close=close)
        conn.busy = False
        conn.phase = _IDLE
        conn.method = ""
        conn.headers = None
        conn.body = bytearray()
        if close:
            conn.closing = True
        else:
            conn.deadline = time.monotonic() + self.idle_deadline_s
            # Pipelined requests may already be buffered (no-op when
            # called from inside the parse loop itself).
            self._parse(conn)
        self._flush(conn)

    def _enqueue_response(
        self, conn: _Connection, response: routes.Response, *, close: bool
    ) -> None:
        reason = _REASONS.get(response.status, "Unknown")
        head = [
            f"HTTP/1.1 {response.status} {reason}\r\n"
            f"Server: repro-serving/1.0\r\n"
            f"Content-Type: {response.content_type}\r\n"
            f"Content-Length: {len(response.body)}\r\n"
        ]
        for name, value in response.headers:
            head.append(f"{name}: {value}\r\n")
        head.append("Connection: close\r\n" if close else "Connection: keep-alive\r\n")
        head.append("\r\n")
        conn.outbuf += "".join(head).encode("latin-1")
        conn.outbuf += response.body

    def _reject(
        self,
        conn: _Connection,
        status: int | None,
        message: str | None,
        *,
        response: routes.Response | None = None,
    ) -> None:
        """Protocol-level error: answer (if possible) and close."""
        if response is None:
            response = routes.error_response(status, message)
        conn.want_close = True
        conn.closing = True  # stops the parser; close once the 4xx drains
        self._enqueue_response(conn, response, close=True)
        self._flush(conn)

    # -------------------------------------------------------------- writing

    def _flush(self, conn: _Connection) -> None:
        if conn.fd not in self._conns:
            return
        view = memoryview(conn.outbuf)
        while conn.outstart < len(conn.outbuf):
            try:
                sent = conn.sock.send(view[conn.outstart:])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                view.release()
                self._close_conn(conn)
                return
            conn.outstart += sent
        view.release()
        if conn.outstart >= len(conn.outbuf):
            conn.outbuf = bytearray()
            conn.outstart = 0
            if conn.closing:
                self._close_conn(conn)
                return
        self._update_events(conn)

    # ------------------------------------------------------------ deadlines

    def _expire_deadlines(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            if conn.deadline is None or conn.deadline > now:
                continue
            if conn.phase in (_HEADERS, _BODY, _CHUNKED):
                # Slowloris: a partial request that blew its read
                # deadline.  408 then close (best-effort write).
                self._reject(conn, 408, "request read deadline exceeded")
                if conn.fd in self._conns:
                    self._close_conn(conn)
            else:
                # Idle keep-alive past its welcome.
                self._close_conn(conn)
        if (
            self._draining
            and self._drain_deadline is not None
            and self._drain_deadline <= now
        ):
            for conn in list(self._conns.values()):
                self._close_conn(conn)

    # ---------------------------------------------------------------- drain

    def _begin_drain(self) -> None:
        self._draining = True
        self._drain_deadline = time.monotonic() + self.drain_grace_s
        self._set_accepting(False)
        for conn in list(self._conns.values()):
            if conn.busy:
                conn.want_close = True  # response will carry Connection: close
            elif len(conn.outbuf) - conn.outstart:
                conn.closing = True  # close as soon as the response drains
                self._flush(conn)
            else:
                self._close_conn(conn)

    def _drain_complete(self) -> bool:
        return not self._conns
