"""End-to-end translation pipelines (paper Fig. 5).

:class:`ValueNetPipeline` is the full system: question in, SQL out, with
value candidates established by extraction + generation + validation.
:class:`ValueNetLightPipeline` is the oracle-value variant: the caller
supplies the set of value options (paper Section IV-A) and the rest of the
pipeline is identical.

Both record per-stage wall-clock timings (Table II) and can execute the
synthesized SQL against the database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.candidates.types import ValueCandidate
from repro.db.database import Database
from repro.errors import ExecutionError, ReproError
from repro.model.valuenet import ValueNetModel
from repro.ner.extractor import ValueExtractor
from repro.pipeline.timing import StageTimings
from repro.postprocessing.sql_builder import SqlBuilder
from repro.preprocessing.pipeline import PreprocessedQuestion, Preprocessor
from repro.semql.tree import SemQLNode


@dataclass
class TranslationResult:
    """Everything one translation produced.

    ``sql`` is None when the model could not synthesize a query (the
    ``error`` field then explains why); ``rows`` is None unless execution
    was requested and succeeded.
    """

    question: str
    sql: str | None = None
    semql: SemQLNode | None = None
    candidates: list[ValueCandidate] = field(default_factory=list)
    timings: StageTimings = field(default_factory=StageTimings)
    rows: list[tuple] | None = None
    error: str | None = None

    @property
    def succeeded(self) -> bool:
        return self.sql is not None and self.error is None


class _BasePipeline:
    """Shared pipeline skeleton; subclasses provide the pre-processing."""

    def __init__(
        self,
        model: ValueNetModel,
        database: Database,
        extractor: ValueExtractor | None = None,
        preprocessor: Preprocessor | None = None,
        *,
        beam_size: int = 1,
        execution_timeout_s: float | None = None,
        execution_max_rows: int | None = 100_000,
        policy=None,
    ):
        self.model = model
        self.database = database
        self.preprocessor = preprocessor or Preprocessor(database, extractor)
        self.builder = SqlBuilder(database.schema)
        self.beam_size = beam_size
        # Wall-clock budget + row cap for executing *generated* SQL
        # (None timeout disables the interrupt timer).  The optional
        # policy engine validates the SQL between synthesis and
        # execution (see repro.policy).
        self.execution_timeout_s = execution_timeout_s
        self.execution_max_rows = execution_max_rows
        self.policy = policy

    def _preprocess(self, question: str, timings: StageTimings, **kwargs):
        raise NotImplementedError

    def translate(self, question: str, *, execute: bool = False, **kwargs) -> TranslationResult:
        """Translate ``question`` to SQL (optionally executing it)."""
        timings = StageTimings()
        result = TranslationResult(question=question, timings=timings)
        try:
            pre: PreprocessedQuestion = self._preprocess(question, timings, **kwargs)
        except ReproError as exc:
            result.error = f"preprocessing failed: {exc}"
            return result
        result.candidates = pre.candidates

        start = time.perf_counter()
        try:
            tree = self.model.predict(
                pre, self.database.schema, beam_size=self.beam_size
            )
        except ReproError as exc:
            timings.encoder_decoder = time.perf_counter() - start
            result.error = f"decoding failed: {exc}"
            return result
        timings.encoder_decoder = time.perf_counter() - start
        result.semql = tree
        self._postprocess(result, tree, execute)
        return result

    def translate_batch(
        self,
        questions: list[str],
        *,
        execute: bool | list[bool] = False,
        encode_observer: Callable[[float, int], None] | None = None,
        **kwargs,
    ) -> list[TranslationResult]:
        """Translate several questions against this database at once.

        Pre-processing, decoding and post-processing stay per-question,
        but the encoder runs *once* over the padded micro-batch — the
        results are identical to sequential :meth:`translate` calls.

        Args:
            questions: the batch (any size, including 0 or 1).
            execute: one flag for every question, or one flag per
                question (micro-batches may mix execute requests).
            encode_observer: called with ``(seconds, batch_size)`` after
                the fused encode — the serving layer records it into the
                ``serving_encode_batch_seconds`` histogram.
            **kwargs: forwarded to pre-processing (see
                :meth:`_batch_kwargs` for per-question splitting).
        """
        flags = (
            [bool(f) for f in execute]
            if isinstance(execute, (list, tuple))
            else [bool(execute)] * len(questions)
        )
        if len(flags) != len(questions):
            raise ValueError(
                f"{len(flags)} execute flags for {len(questions)} questions"
            )
        results = [
            TranslationResult(question=question, timings=StageTimings())
            for question in questions
        ]
        active: list[tuple[int, PreprocessedQuestion]] = []
        for index, (question, result) in enumerate(zip(questions, results)):
            try:
                pre = self._preprocess(
                    question, result.timings, **self._batch_kwargs(index, kwargs)
                )
            except ReproError as exc:
                result.error = f"preprocessing failed: {exc}"
                continue
            result.candidates = pre.candidates
            active.append((index, pre))
        if not active:
            return results

        start = time.perf_counter()
        try:
            encoded_batch = self.model.encode_batch(
                [pre for _, pre in active], self.database.schema
            )
        except ReproError as exc:
            share = (time.perf_counter() - start) / len(active)
            for index, _ in active:
                results[index].timings.encoder_decoder = share
                results[index].error = f"decoding failed: {exc}"
            return results
        encode_seconds = time.perf_counter() - start
        if encode_observer is not None:
            encode_observer(encode_seconds, len(active))
        # The fused encode is shared work: attribute an equal share to
        # every participating request so per-request timings stay honest.
        share = encode_seconds / len(active)

        for (index, pre), encoded in zip(active, encoded_batch):
            result = results[index]
            start = time.perf_counter()
            try:
                tree = self.model.decode_encoded(
                    encoded, pre, self.database.schema, beam_size=self.beam_size
                )
            except ReproError as exc:
                result.timings.encoder_decoder = (
                    share + time.perf_counter() - start
                )
                result.error = f"decoding failed: {exc}"
                continue
            result.timings.encoder_decoder = share + time.perf_counter() - start
            result.semql = tree
            self._postprocess(result, tree, flags[index])
        return results

    def _batch_kwargs(self, index: int, kwargs: dict) -> dict:
        """Split batch-level kwargs into per-question preprocess kwargs."""
        return kwargs

    def _postprocess(
        self, result: TranslationResult, tree: SemQLNode, execute: bool
    ) -> None:
        """SemQL -> SQL (and optional execution), recording timings."""
        timings = result.timings
        start = time.perf_counter()
        try:
            result.sql = self.builder.build(tree)
        except ReproError as exc:
            timings.postprocessing = time.perf_counter() - start
            result.error = f"post-processing failed: {exc}"
            return
        timings.postprocessing = time.perf_counter() - start

        if execute:
            from repro.db.executor import execute_with_budget
            from repro.policy.engine import PolicyViolationError

            start = time.perf_counter()
            try:
                result.rows = execute_with_budget(
                    self.database,
                    result.sql,
                    timeout_s=self.execution_timeout_s,
                    max_rows=self.execution_max_rows,
                    policy=self.policy,
                )
            except PolicyViolationError as exc:
                result.error = str(exc)
            except ExecutionError as exc:
                result.error = f"execution failed: {exc}"
            timings.execution = time.perf_counter() - start


class ValueNetPipeline(_BasePipeline):
    """The full end-to-end ValueNet system."""

    def _preprocess(self, question: str, timings: StageTimings) -> PreprocessedQuestion:
        stage_times: dict[str, float] = {}
        pre = self.preprocessor.run(question, timings=stage_times)
        timings.preprocessing = stage_times.get("preprocessing", 0.0)
        timings.value_lookup = stage_times.get("value_lookup", 0.0)
        return pre


class ValueNetLightPipeline(_BasePipeline):
    """ValueNet light: gold value options are supplied by the caller.

    :meth:`translate_batch` takes ``values`` as one option list *per
    question* (``values[i]`` belongs to ``questions[i]``).
    """

    def translate(
        self, question: str, *, values: list[object], execute: bool = False
    ) -> TranslationResult:
        return super().translate(question, execute=execute, values=values)

    def _batch_kwargs(self, index: int, kwargs: dict) -> dict:
        return {"values": kwargs["values"][index]}

    def _preprocess(
        self, question: str, timings: StageTimings, *, values: list[object]
    ) -> PreprocessedQuestion:
        stage_times: dict[str, float] = {}
        pre = self.preprocessor.run_light(question, values, timings=stage_times)
        timings.preprocessing = stage_times.get("preprocessing", 0.0)
        timings.value_lookup = stage_times.get("value_lookup", 0.0)
        return pre
