"""End-to-end translation pipelines with per-stage timing."""

from repro.pipeline.timing import STAGES, StageTimings, TimingAggregate
from repro.pipeline.valuenet import (
    TranslationResult,
    ValueNetLightPipeline,
    ValueNetPipeline,
)

__all__ = [
    "STAGES",
    "StageTimings",
    "TimingAggregate",
    "TranslationResult",
    "ValueNetLightPipeline",
    "ValueNetPipeline",
]
