"""Per-stage timing records (paper Table II)."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

STAGES = (
    "preprocessing",
    "value_lookup",
    "encoder_decoder",
    "postprocessing",
    "execution",
)


@dataclass
class StageTimings:
    """Wall-clock seconds per translation stage for one question."""

    preprocessing: float = 0.0
    value_lookup: float = 0.0
    encoder_decoder: float = 0.0
    postprocessing: float = 0.0
    execution: float = 0.0

    @property
    def total(self) -> float:
        return sum(getattr(self, stage) for stage in STAGES)

    def as_dict(self) -> dict[str, float]:
        return {stage: getattr(self, stage) for stage in STAGES}


@dataclass
class TimingAggregate:
    """Mean and standard deviation per stage over many questions."""

    samples: list[StageTimings] = field(default_factory=list)

    def add(self, timings: StageTimings) -> None:
        self.samples.append(timings)

    def mean_ms(self, stage: str) -> float:
        if not self.samples:
            return 0.0
        values = [getattr(t, stage) for t in self.samples]
        return 1000.0 * sum(values) / len(values)

    def std_ms(self, stage: str) -> float:
        if len(self.samples) < 2:
            return 0.0
        values = [1000.0 * getattr(t, stage) for t in self.samples]
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    def mean_total_ms(self) -> float:
        if not self.samples:
            return 0.0
        return 1000.0 * sum(t.total for t in self.samples) / len(self.samples)

    def table(self) -> list[tuple[str, float, float]]:
        """(stage, mean_ms, std_ms) rows, in the paper's Table II order."""
        return [(stage, self.mean_ms(stage), self.std_ms(stage)) for stage in STAGES]
