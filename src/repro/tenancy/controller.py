"""The tenancy front door: authenticate, rate-limit, charge quota.

:class:`TenancyController` is the one object the serving layer holds.
It bundles the hot-reloadable :class:`~repro.tenancy.registry.TenantRegistry`,
one :class:`~repro.tenancy.bucket.TokenBucket` per tenant (resynced when
the registry reloads), and the durable
:class:`~repro.tenancy.quota.QuotaLedger`, and exposes exactly one
admission call::

    tenant = controller.admit(api_key)   # or raises:
    #   AuthenticationError   -> HTTP 401
    #   RateLimitedError      -> HTTP 429 + Retry-After (from the bucket)
    #   QuotaExceededError    -> HTTP 429 + Retry-After (to UTC midnight)

Each reject reason has its own metric so dashboards can tell an attack
(auth failures) from a hot tenant (rate limited) from an exhausted plan
(quota).  Admission runs entirely in memory on the no-contention path —
a dict lookup, one constant-time key scan, a bucket refill, and a ledger
increment — keeping the added latency well under the 1 ms p99 budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.concurrency import make_lock
from repro.errors import ReproError
from repro.tenancy.bucket import TokenBucket
from repro.tenancy.quota import QuotaLedger
from repro.tenancy.registry import Tenant, TenantRegistry

if TYPE_CHECKING:
    from repro.metrics import MetricsRegistry


class TenancyError(ReproError):
    """Base class for admission rejections."""


class AuthenticationError(TenancyError):
    """Missing, unknown, or disabled API key (HTTP 401)."""


class RateLimitedError(TenancyError):
    """The tenant's token bucket is empty (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class QuotaExceededError(TenancyError):
    """The tenant's daily quota is spent (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class TenancyController:
    """Admission control over a tenant registry, buckets, and quotas."""

    def __init__(
        self,
        registry: TenantRegistry,
        *,
        ledger: QuotaLedger | None = None,
        metrics: "MetricsRegistry | None" = None,
    ):
        # Deferred import: repro.serving.http imports this module, so a
        # top-level import of repro.serving here would be circular.
        from repro.metrics import MetricsRegistry

        self.registry = registry
        self.ledger = ledger if ledger is not None else QuotaLedger()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = make_lock("TenancyController._lock")
        self._buckets: dict[str, TokenBucket] = {}  # guarded by: _lock
        self._bucket_generation = -1  # guarded by: _lock
        m = self.metrics
        self._auth_failures = m.counter(
            "tenancy_auth_failures_total",
            "requests rejected for a missing/unknown/disabled API key")
        self._admitted = m.labeled_counter(
            "tenant_admitted_total",
            "requests admitted through the tenancy front door, per tenant")
        self._rate_limited = m.labeled_counter(
            "tenant_rate_limited_total",
            "requests rejected by the token bucket, per tenant")
        self._quota_rejected = m.labeled_counter(
            "tenant_quota_rejected_total",
            "requests rejected by the daily quota, per tenant")

    # ------------------------------------------------------------- buckets

    def _bucket(self, tenant: Tenant) -> TokenBucket:
        """The tenant's bucket, resynced after registry hot reloads.

        Buckets with unchanged (rate, burst) survive a reload so a config
        push does not hand every tenant a fresh burst.
        """
        generation = self.registry.generation
        with self._lock:
            if generation != self._bucket_generation:
                kept: dict[str, TokenBucket] = {}
                for t in self.registry.tenants():
                    bucket = self._buckets.get(t.tenant_id)
                    if (
                        bucket is not None
                        and bucket.rate == t.rate
                        and bucket.burst == t.burst
                    ):
                        kept[t.tenant_id] = bucket
                self._buckets = kept
                self._bucket_generation = generation
            bucket = self._buckets.get(tenant.tenant_id)
            if bucket is None:
                bucket = TokenBucket(tenant.rate, tenant.burst)
                self._buckets[tenant.tenant_id] = bucket
            return bucket

    # ----------------------------------------------------------- admission

    def authenticate(self, api_key: str | None) -> Tenant:
        """Resolve a key to its tenant; raises :class:`AuthenticationError`."""
        self.registry.reload_if_changed()
        tenant = self.registry.authenticate(api_key)
        if tenant is None:
            self._auth_failures.inc()
            raise AuthenticationError("missing or unknown API key")
        return tenant

    def admit(self, api_key: str | None) -> Tenant:
        """Full front-door check: auth, then bucket, then quota."""
        tenant = self.authenticate(api_key)
        decision = self._bucket(tenant).try_acquire()
        if not decision.allowed:
            self._rate_limited.labels(tenant.tenant_id).inc()
            raise RateLimitedError(
                f"tenant {tenant.tenant_id!r} exceeded its rate "
                f"({tenant.rate:g}/s, burst {tenant.burst:g})",
                decision.retry_after_s,
            )
        quota = self.ledger.charge(tenant.tenant_id, tenant.daily_quota)
        if not quota.allowed:
            self._quota_rejected.labels(tenant.tenant_id).inc()
            raise QuotaExceededError(
                f"tenant {tenant.tenant_id!r} exhausted its daily quota "
                f"({tenant.daily_quota})",
                quota.retry_after_s,
            )
        self._admitted.labels(tenant.tenant_id).inc()
        return tenant

    def is_admin(self, api_key: str | None) -> bool:
        self.registry.reload_if_changed()
        return self.registry.is_admin(api_key)

    # --------------------------------------------------------------- views

    def usage(self, tenant_id: str) -> dict | None:
        """Front-door usage for one tenant (``None`` when unknown)."""
        tenant = self.registry.get(tenant_id)
        if tenant is None:
            return None
        day, used = self.ledger.usage(tenant_id)
        remaining = (
            None if tenant.daily_quota is None
            else max(0, tenant.daily_quota - used)
        )
        return {
            **tenant.describe(),
            "day": day,
            "quota_used": used,
            "quota_remaining": remaining,
            "tokens_available": round(self._bucket(tenant).peek(), 3),
            "admitted": self._admitted.labels(tenant_id).value,
            "rejected": {
                "rate_limited": self._rate_limited.labels(tenant_id).value,
                "quota": self._quota_rejected.labels(tenant_id).value,
            },
        }

    def overview(self) -> dict:
        """Admin listing: registry metadata plus per-tenant usage."""
        return {
            "config_version": self.registry.version,
            "config_path": str(self.registry.path) if self.registry.path else None,
            "auth_failures": self._auth_failures.value,
            "tenants": [
                self.usage(t.tenant_id) for t in self.registry.tenants()
            ],
        }

    def close(self) -> None:
        """Flush the quota ledger (call on serve shutdown)."""
        self.ledger.close()
