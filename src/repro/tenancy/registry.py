"""API-key tenant registry: versioned config file with hot reload.

Config format (JSON)::

    {
      "version": 3,
      "priority_classes": {"gold": 8, "silver": 4, "bronze": 1},
      "admin_keys": ["ops-admin-key"],
      "tenants": [
        {
          "id": "acme",
          "api_key": "acme-secret-key",
          "name": "Acme Corp",
          "class": "gold",
          "rate": 50,
          "burst": 100,
          "daily_quota": 100000,
          "enabled": true
        }
      ]
    }

``version`` is a human-maintained integer surfaced by the admin
endpoint so operators can confirm which revision is live.  ``class``
resolves to a scheduling weight through ``priority_classes`` (defaults
below).  ``daily_quota`` may be omitted/null for unlimited; ``enabled:
false`` keeps a tenant's record (and its quota history) while refusing
its traffic.

Hot reload: :meth:`TenantRegistry.reload_if_changed` stats the config
file (throttled to once per second) and atomically swaps the parsed
tenant table when the file changed.  A file that fails to parse keeps
the previous table — a bad config push degrades to "no change", never
to "no tenants".

Authentication is constant-time: the key is compared against *every*
tenant with :func:`hmac.compare_digest`, with no early exit, so response
timing leaks neither key prefixes nor whether a key exists at all.
"""

from __future__ import annotations

import hmac
import json
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.concurrency import make_lock
from repro.errors import ReproError
from repro.logs import get_logger

_LOG = get_logger(__name__)

DEFAULT_PRIORITY_CLASSES = {"gold": 8, "silver": 4, "bronze": 1}
DEFAULT_CLASS = "bronze"

# Tenant ids flow into Prometheus label values and file paths unescaped;
# restricting the alphabet at load time keeps both layers trivially safe.
_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class TenantConfigError(ReproError):
    """The tenants config file is malformed."""


@dataclass(frozen=True)
class Tenant:
    """One tenant's admission contract (immutable; reload swaps objects)."""

    tenant_id: str
    api_key: str
    name: str = ""
    priority_class: str = DEFAULT_CLASS
    weight: int = 1
    rate: float = 10.0          # sustained requests per second
    burst: float = 20.0         # token-bucket capacity
    daily_quota: int | None = None
    enabled: bool = True

    def describe(self) -> dict:
        """Public view — everything except the key."""
        return {
            "id": self.tenant_id,
            "name": self.name,
            "class": self.priority_class,
            "weight": self.weight,
            "rate": self.rate,
            "burst": self.burst,
            "daily_quota": self.daily_quota,
            "enabled": self.enabled,
        }


def _parse_tenant(raw: dict, classes: dict[str, int]) -> Tenant:
    if not isinstance(raw, dict):
        raise TenantConfigError("each tenant must be an object")
    tenant_id = raw.get("id")
    if not isinstance(tenant_id, str) or not _TENANT_ID_RE.match(tenant_id):
        raise TenantConfigError(
            f"tenant id {tenant_id!r} must match {_TENANT_ID_RE.pattern}"
        )
    api_key = raw.get("api_key")
    if not isinstance(api_key, str) or len(api_key) < 8:
        raise TenantConfigError(
            f"tenant {tenant_id!r} needs an api_key of at least 8 characters"
        )
    priority_class = raw.get("class", DEFAULT_CLASS)
    if priority_class not in classes:
        raise TenantConfigError(
            f"tenant {tenant_id!r} has unknown class {priority_class!r} "
            f"(known: {', '.join(sorted(classes))})"
        )
    rate = float(raw.get("rate", 10.0))
    burst = float(raw.get("burst", max(1.0, 2 * rate)))
    if rate <= 0 or burst < 1:
        raise TenantConfigError(
            f"tenant {tenant_id!r} needs rate > 0 and burst >= 1"
        )
    quota = raw.get("daily_quota")
    if quota is not None:
        quota = int(quota)
        if quota < 0:
            raise TenantConfigError(
                f"tenant {tenant_id!r} daily_quota must be >= 0"
            )
    return Tenant(
        tenant_id=tenant_id,
        api_key=api_key,
        name=str(raw.get("name", tenant_id)),
        priority_class=priority_class,
        weight=max(1, int(classes[priority_class])),
        rate=rate,
        burst=burst,
        daily_quota=quota,
        enabled=bool(raw.get("enabled", True)),
    )


def _parse_config(payload: dict) -> tuple[int, dict[str, int], tuple[str, ...], list[Tenant]]:
    if not isinstance(payload, dict):
        raise TenantConfigError("tenants config must be a JSON object")
    version = int(payload.get("version", 0))
    classes = dict(DEFAULT_PRIORITY_CLASSES)
    for name, weight in (payload.get("priority_classes") or {}).items():
        if not isinstance(name, str) or int(weight) < 1:
            raise TenantConfigError(
                f"priority class {name!r} needs an integer weight >= 1"
            )
        classes[name] = int(weight)
    admin_keys = tuple(str(k) for k in payload.get("admin_keys") or ())
    tenants = [_parse_tenant(raw, classes) for raw in payload.get("tenants") or ()]
    seen_ids: set[str] = set()
    seen_keys: set[str] = set()
    for tenant in tenants:
        if tenant.tenant_id in seen_ids:
            raise TenantConfigError(f"duplicate tenant id {tenant.tenant_id!r}")
        if tenant.api_key in seen_keys or tenant.api_key in admin_keys:
            raise TenantConfigError(
                f"tenant {tenant.tenant_id!r} reuses another api_key"
            )
        seen_ids.add(tenant.tenant_id)
        seen_keys.add(tenant.api_key)
    return version, classes, admin_keys, tenants


def _constant_time_lookup(key: str, tenants: list[Tenant]) -> Tenant | None:
    """Compare ``key`` against every tenant; no early exit."""
    encoded = key.encode("utf-8")
    found: Tenant | None = None
    for tenant in tenants:
        if hmac.compare_digest(encoded, tenant.api_key.encode("utf-8")):
            found = tenant
    return found


class TenantRegistry:
    """In-memory tenant table, optionally backed by a hot-reloaded file."""

    def __init__(
        self,
        tenants: list[Tenant],
        *,
        priority_classes: dict[str, int] | None = None,
        admin_keys: tuple[str, ...] = (),
        version: int = 0,
        path: str | os.PathLike | None = None,
    ):
        self.path = Path(path) if path is not None else None
        self._lock = make_lock("TenantRegistry._lock")
        self._tenants = list(tenants)  # guarded by: _lock
        self._by_id = {t.tenant_id: t for t in tenants}  # guarded by: _lock
        self._classes = dict(priority_classes or DEFAULT_PRIORITY_CLASSES)  # guarded by: _lock
        self._admin_keys = tuple(admin_keys)  # guarded by: _lock
        self._version = int(version)  # guarded by: _lock
        self._generation = 0  # guarded by: _lock
        self._stat_sig: tuple | None = None  # guarded by: _lock
        self._last_check = 0.0  # guarded by: _lock
        if self.path is not None:
            try:
                stat = self.path.stat()
                self._stat_sig = (stat.st_mtime_ns, stat.st_size)
            except OSError:
                self._stat_sig = None

    # ------------------------------------------------------------- loading

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "TenantRegistry":
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise TenantConfigError(f"cannot load tenants config {path}: {exc}")
        version, classes, admin_keys, tenants = _parse_config(payload)
        return cls(
            tenants,
            priority_classes=classes,
            admin_keys=admin_keys,
            version=version,
            path=path,
        )

    def reload_if_changed(self, *, min_interval_s: float = 1.0) -> bool:
        """Re-read the config when the file changed; returns True on swap.

        Throttled: the file is stat'd at most every ``min_interval_s``.
        Parse failures keep the current table and log a warning.
        """
        if self.path is None:
            return False
        now = time.monotonic()
        with self._lock:
            if now - self._last_check < min_interval_s:
                return False
            self._last_check = now
            previous_sig = self._stat_sig
        try:
            stat = self.path.stat()
            sig = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            return False  # file temporarily missing: keep serving old table
        if sig == previous_sig:
            return False
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
            version, classes, admin_keys, tenants = _parse_config(payload)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError,
                TenantConfigError, ValueError) as exc:
            # justified: a bad config push must not drop the live tenant
            # table; the warning is the operator's signal to fix it.
            _LOG.warning("tenants config %s reload failed: %s", self.path, exc)
            with self._lock:
                self._stat_sig = sig  # don't re-parse the same bad file
            return False
        with self._lock:
            self._tenants = tenants
            self._by_id = {t.tenant_id: t for t in tenants}
            self._classes = classes
            self._admin_keys = admin_keys
            self._version = version
            self._stat_sig = sig
            self._generation += 1
        _LOG.info("tenants config reloaded: version=%s tenants=%d",
                  version, len(tenants))
        return True

    # ------------------------------------------------------------- queries

    def authenticate(self, api_key: str | None) -> Tenant | None:
        """Constant-time key lookup; ``None`` for unknown/missing keys.

        Disabled tenants authenticate to ``None`` as well — callers
        cannot distinguish a revoked key from an unknown one, which is
        the point.
        """
        if not api_key:
            return None
        with self._lock:
            tenants = self._tenants
        tenant = _constant_time_lookup(api_key, tenants)
        if tenant is not None and not tenant.enabled:
            return None
        return tenant

    def is_admin(self, api_key: str | None) -> bool:
        if not api_key:
            return False
        with self._lock:
            admin_keys = self._admin_keys
        encoded = api_key.encode("utf-8")
        matched = False
        for key in admin_keys:
            if hmac.compare_digest(encoded, key.encode("utf-8")):
                matched = True
        return matched

    def get(self, tenant_id: str) -> Tenant | None:
        with self._lock:
            return self._by_id.get(tenant_id)

    def tenants(self) -> list[Tenant]:
        with self._lock:
            return list(self._tenants)

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    @property
    def generation(self) -> int:
        """Bumps on every successful hot reload (buckets resync on it)."""
        with self._lock:
            return self._generation
