"""Per-tenant token-bucket rate limiting.

A :class:`TokenBucket` enforces a sustained ``rate`` (tokens per second)
with a ``burst`` allowance (bucket capacity): over any time window of
length ``T`` it grants at most ``burst + rate * T`` requests, and a
tenant that has been idle long enough always has a full burst available.

Timebase: the bucket runs entirely on the *monotonic* clock.  Callers
may inject ``now`` (a monotonic-style timestamp) on every call, which is
how the property tests drive it deterministically; production callers
just omit it.

The bucket never sleeps.  A denied acquisition reports ``retry_after_s``
— the exact time until one token will have accumulated — which the HTTP
layer turns into a ``Retry-After`` header on the 429 response.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.concurrency import make_lock


@dataclass(frozen=True)
class BucketDecision:
    """Outcome of one :meth:`TokenBucket.try_acquire` call."""

    allowed: bool
    retry_after_s: float  # 0.0 when allowed
    tokens_left: float    # tokens remaining after the decision


class TokenBucket:
    """Classic token bucket: capacity ``burst``, refill ``rate``/second."""

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError("rate must be positive (tokens per second)")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)  # guarded by: _lock
        self._updated: float | None = None  # guarded by: _lock
        self._lock = make_lock("TokenBucket._lock")

    def _refill_locked(self, now: float) -> None:
        """Advance the bucket to ``now``; caller holds ``_lock``."""
        if self._updated is None:
            self._updated = now
            return
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now
        # A clock that appears to run backwards (only possible with an
        # injected test clock) leaves the bucket untouched rather than
        # draining it.

    def try_acquire(
        self, tokens: float = 1.0, *, now: float | None = None
    ) -> BucketDecision:
        """Take ``tokens`` if available; never blocks.

        Returns the decision with ``retry_after_s`` set to the time until
        the *requested* amount will have refilled when denied.
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill_locked(now)
            if self._tokens >= tokens:
                self._tokens -= tokens
                return BucketDecision(True, 0.0, self._tokens)
            deficit = tokens - self._tokens
            return BucketDecision(False, deficit / self.rate, self._tokens)

    def peek(self, *, now: float | None = None) -> float:
        """Current token count (after refill), without taking any."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill_locked(now)
            return self._tokens
