"""Durable per-tenant daily quotas.

The ledger counts requests per tenant per UTC calendar day and
checkpoints the counts to disk so a serve restart does not reset them
(a tenant cannot double its daily budget by bouncing the server).

Durability model: every state-changing call increments a dirty counter
and the ledger checkpoints every ``flush_every`` charges plus on
:meth:`flush`/:meth:`close`.  Checkpoints are atomic — the JSON is
written to a temp file in the same directory and ``os.replace``\\ d over
the target — so a crash mid-write leaves the previous checkpoint
intact.  Losing the tail between checkpoints under-counts by at most
``flush_every`` requests, which is the right failure direction for a
quota (never over-charge a tenant for requests that were lost).

Calendar semantics are the one place wall-clock time is *correct*: a
"daily" quota resets at UTC midnight by definition, so the day key comes
from ``datetime.now(timezone.utc)`` (injectable for tests), never from
the monotonic clock.  Deadlines and durations elsewhere in the codebase
stay monotonic per the WALLCLOCK rule.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path

from repro.concurrency import make_lock
from repro.logs import get_logger

_LOG = get_logger(__name__)

_FORMAT_VERSION = 1
_SECONDS_PER_DAY = 86_400


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


@dataclass(frozen=True)
class QuotaDecision:
    """Outcome of one :meth:`QuotaLedger.charge` call."""

    allowed: bool
    used: int               # count after the decision (charged when allowed)
    remaining: int | None   # None = unlimited
    retry_after_s: float    # seconds until the next UTC midnight when denied


class QuotaLedger:
    """Per-tenant daily request counts with atomic on-disk checkpoints.

    Args:
        path: checkpoint file; ``None`` keeps the ledger memory-only
            (tests, deployments that accept reset-on-restart).
        flush_every: charges between automatic checkpoints.
        now_fn: UTC ``datetime`` source (injected by tests to exercise
            day rollover deterministically).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        flush_every: int = 64,
        now_fn=None,
    ):
        self.path = Path(path) if path is not None else None
        self.flush_every = max(1, int(flush_every))
        self._now_fn = now_fn or _utc_now
        self._lock = make_lock("QuotaLedger._lock")
        self._day = self._today()  # guarded by: _lock
        self._counts: dict[str, int] = {}  # guarded by: _lock
        self._dirty = 0  # guarded by: _lock
        if self.path is not None:
            self._load()

    # -------------------------------------------------------------- clock

    def _today(self) -> str:
        return self._now_fn().strftime("%Y-%m-%d")

    def _seconds_to_midnight(self) -> float:
        now = self._now_fn()
        midnight = now.replace(hour=0, minute=0, second=0, microsecond=0)
        elapsed = (now - midnight).total_seconds()
        return max(1.0, _SECONDS_PER_DAY - elapsed)

    # --------------------------------------------------------- persistence

    def _load(self) -> None:
        """Restore counts from the checkpoint (same-day entries only)."""
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            # justified: a corrupt checkpoint must not brick serving; we
            # log it and start the day's counts fresh (under-counting).
            _LOG.warning("quota checkpoint %s unreadable (%s); starting fresh",
                         self.path, exc)
            return
        if not isinstance(payload, dict):
            _LOG.warning("quota checkpoint %s malformed; starting fresh", self.path)
            return
        with self._lock:
            if payload.get("day") == self._day:
                counts = payload.get("counts")
                if isinstance(counts, dict):
                    self._counts = {
                        str(k): int(v) for k, v in counts.items()
                        if isinstance(v, (int, float))
                    }
            # A checkpoint from a previous day is simply stale: the day
            # rolled over while the server was down, counts reset.

    def _checkpoint_locked(self) -> None:
        """Atomically write the current state; caller holds ``_lock``."""
        if self.path is None:
            return
        payload = {
            "version": _FORMAT_VERSION,
            "day": self._day,
            "counts": self._counts,
        }
        body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            # justified: a full/readonly disk must not fail requests; the
            # quota degrades to memory-only until the disk recovers.
            _LOG.warning("quota checkpoint to %s failed: %s", self.path, exc)
            try:
                os.unlink(tmp)
            except OSError:
                pass
        self._dirty = 0

    def flush(self) -> None:
        """Force a checkpoint now (no-op for memory-only ledgers)."""
        with self._lock:
            self._checkpoint_locked()

    def close(self) -> None:
        self.flush()

    # ------------------------------------------------------------ charging

    def _rollover_locked(self) -> None:
        today = self._today()
        if today != self._day:
            self._day = today
            self._counts = {}
            self._checkpoint_locked()

    def charge(self, tenant_id: str, limit: int | None) -> QuotaDecision:
        """Charge one request against ``tenant_id``'s daily budget.

        ``limit=None`` means unlimited — the request is still counted so
        the usage endpoint reports it.
        """
        with self._lock:
            self._rollover_locked()
            used = self._counts.get(tenant_id, 0)
            if limit is not None and used >= limit:
                return QuotaDecision(
                    False, used, 0, self._seconds_to_midnight()
                )
            used += 1
            self._counts[tenant_id] = used
            self._dirty += 1
            if self._dirty >= self.flush_every:
                self._checkpoint_locked()
            remaining = None if limit is None else max(0, limit - used)
            return QuotaDecision(True, used, remaining, 0.0)

    def usage(self, tenant_id: str) -> tuple[str, int]:
        """``(day, used)`` for one tenant, today."""
        with self._lock:
            self._rollover_locked()
            return self._day, self._counts.get(tenant_id, 0)
