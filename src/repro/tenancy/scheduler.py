"""Weighted-fair admission queue: deficit round robin over tenant lanes.

:class:`FairQueue` replaces the translation service's flat FIFO.  Each
tenant gets its own bounded sub-queue (a *lane*); consumers drain lanes
with deficit round robin keyed on the tenant's priority-class weight, so
a tenant with weight 4 is served four requests per scheduling round for
every one request of a weight-1 tenant — a hot tenant flooding its lane
delays only itself.

Guarantees (locked by the property tests in ``tests/test_tenancy.py``):

* **Work conservation** — :meth:`pop` never blocks while any item is
  queued; with a single backlogged lane that lane gets full throughput.
* **No starvation** — while backlogged, every lane is served at least
  once per round; a round is at most ``sum(weights of backlogged
  lanes)`` pops.
* **Per-lane FIFO** — items of one tenant leave in arrival order.
* **Bounded** — a global ``maxsize`` plus an optional ``per_lane_limit``
  mean one tenant cannot occupy the whole queue;
  :class:`LaneBacklogFull` (a ``queue.Full`` subclass) tells the caller
  the *tenant* hit its bound rather than the service, so load shedding
  can be attributed in the metrics.

A separate unbounded *control* lane carries scheduler-opaque sentinels
(worker shutdown tokens); control items are delivered before any data
item so a stop request cannot sit behind a tenant backlog.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque

from repro.concurrency import make_lock

DEFAULT_LANE = "_anon"  # lane used for unauthenticated / tenant-less traffic


class LaneBacklogFull(queue.Full):
    """One tenant's lane is at capacity (the global queue may have room)."""


class FairQueue:
    """Bounded multi-lane queue drained by deficit round robin.

    Args:
        maxsize: global bound across all data lanes (0 = unbounded).
        per_lane_limit: per-tenant bound (``None`` = global bound only).
    """

    def __init__(self, maxsize: int = 0, *, per_lane_limit: int | None = None):
        self.maxsize = int(maxsize)
        self.per_lane_limit = per_lane_limit
        self._lock = make_lock("FairQueue._lock")
        self._not_empty = threading.Condition(self._lock)
        self._lanes: dict[str, deque] = {}  # guarded by: _not_empty
        self._active: deque[str] = deque()  # guarded by: _not_empty
        self._deficit: dict[str, float] = {}  # guarded by: _not_empty
        self._weights: dict[str, int] = {}  # guarded by: _not_empty
        self._control: deque = deque()  # guarded by: _not_empty
        self._size = 0  # guarded by: _not_empty

    # ------------------------------------------------------------ producers

    def push(self, key: str | None, item, *, weight: int = 1) -> None:
        """Enqueue ``item`` on ``key``'s lane; raises ``queue.Full``.

        ``weight`` updates the lane's scheduling weight (the latest push
        wins, so a registry hot-reload takes effect on in-flight lanes).
        """
        lane_key = key if key else DEFAULT_LANE
        with self._not_empty:
            if self.maxsize > 0 and self._size >= self.maxsize:
                raise queue.Full(
                    f"request queue is full ({self.maxsize} pending)"
                )
            lane = self._lanes.get(lane_key)
            if (
                self.per_lane_limit is not None
                and lane is not None
                and len(lane) >= self.per_lane_limit
            ):
                raise LaneBacklogFull(
                    f"tenant {lane_key!r} backlog is full "
                    f"({self.per_lane_limit} pending)"
                )
            if lane is None:
                lane = deque()
                self._lanes[lane_key] = lane
            if not lane:  # lane (re-)activates with a clean deficit
                self._active.append(lane_key)
                self._deficit[lane_key] = 0.0
            self._weights[lane_key] = max(1, int(weight))
            lane.append(item)
            self._size += 1
            self._not_empty.notify()

    def push_control(self, item) -> None:
        """Enqueue a control sentinel (unbounded, delivered first)."""
        with self._not_empty:
            self._control.append(item)
            self._not_empty.notify()

    # ------------------------------------------------------------ consumers

    def _pop_data_locked(self):
        """One DRR step; caller holds ``_lock`` and ``_size > 0``."""
        while True:
            key = self._active[0]
            lane = self._lanes[key]
            if self._deficit[key] < 1.0:
                self._deficit[key] += self._weights.get(key, 1)
            self._deficit[key] -= 1.0
            item = lane.popleft()
            self._size -= 1
            if not lane:
                # Lane drained: deactivate and forfeit leftover deficit
                # (a returning lane must not carry credit from its past).
                self._active.popleft()
                del self._lanes[key]
                self._deficit.pop(key, None)
            elif self._deficit[key] < 1.0:
                # Round exhausted: rotate to the tail, next lane's turn.
                self._active.rotate(-1)
            return item

    def pop(self, timeout: float | None = None):
        """Dequeue the next item per DRR; raises ``queue.Empty`` on timeout.

        Control items always win over data items.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._not_empty:
            while True:
                if self._control:
                    return self._control.popleft()
                if self._size > 0:
                    return self._pop_data_locked()
                if deadline is None:
                    self._not_empty.wait()
                    continue
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._not_empty.wait(timeout=remaining):
                    raise queue.Empty

    # ---------------------------------------------------------- inspection

    def qsize(self) -> int:
        with self._not_empty:
            return self._size

    def empty(self) -> bool:
        with self._not_empty:
            return self._size == 0 and not self._control

    def backlog(self, key: str | None) -> int:
        """Queued items on one lane right now."""
        with self._not_empty:
            lane = self._lanes.get(key if key else DEFAULT_LANE)
            return len(lane) if lane is not None else 0

    def lanes(self) -> dict[str, int]:
        """Snapshot of ``{lane: depth}`` for health reporting."""
        with self._not_empty:
            return {key: len(lane) for key, lane in self._lanes.items()}
