"""Multi-tenant front door: API-key auth, quotas, weighted-fair scheduling.

The subsystem that turns the anonymous serving stack into a
multi-tenant service:

* :class:`TenantRegistry` — API-key tenant table loaded from a
  versioned JSON config with hot reload and constant-time key lookup.
* :class:`TokenBucket` — per-tenant rate limiting (rate + burst).
* :class:`QuotaLedger` — durable daily quotas with atomic on-disk
  checkpoints that survive restarts.
* :class:`FairQueue` — deficit-round-robin admission queue keyed on
  priority-class weights (plugged into the translation service).
* :class:`TenancyController` — the front-door object the HTTP layer
  calls: ``admit(api_key)`` -> authenticated :class:`Tenant`, or a typed
  rejection (401 auth / 429 rate / 429 quota with ``Retry-After``).

Enable it with ``repro serve --tenants tenants.json``.
"""

from repro.tenancy.bucket import BucketDecision, TokenBucket
from repro.tenancy.controller import (
    AuthenticationError,
    QuotaExceededError,
    RateLimitedError,
    TenancyController,
    TenancyError,
)
from repro.tenancy.quota import QuotaDecision, QuotaLedger
from repro.tenancy.registry import (
    DEFAULT_PRIORITY_CLASSES,
    Tenant,
    TenantConfigError,
    TenantRegistry,
)
from repro.tenancy.scheduler import DEFAULT_LANE, FairQueue, LaneBacklogFull

__all__ = [
    "AuthenticationError",
    "BucketDecision",
    "DEFAULT_LANE",
    "DEFAULT_PRIORITY_CLASSES",
    "FairQueue",
    "LaneBacklogFull",
    "QuotaDecision",
    "QuotaExceededError",
    "QuotaLedger",
    "RateLimitedError",
    "Tenant",
    "TenancyController",
    "TenancyError",
    "TenantConfigError",
    "TenantRegistry",
    "TokenBucket",
]
