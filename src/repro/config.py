"""Configuration dataclasses for the ValueNet model and training loop."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters.

    The paper uses BERT-Base (dim 768) with 300-dimensional LSTM
    summarizers/decoder.  Our from-scratch substrate is scaled down so a
    CPU trains it in minutes; the architecture (transformer encoder,
    BiLSTM span summarization, LSTM decoder with pointer networks,
    grammar-constrained decoding) is the paper's.

    Attributes:
        dim: model width (embeddings, transformer, item encodings).
        num_layers: transformer encoder layers.
        num_heads: attention heads.
        ff_dim: transformer feed-forward width.
        summary_hidden: BiLSTM summarizer hidden size.
        decoder_hidden: decoder LSTM hidden size.
        pointer_hidden: pointer-network scorer hidden size.
        dropout: dropout rate (paper: 0.3).
        vocab_size: WordPiece vocabulary budget.
        max_decode_steps: hard cap on decoder steps at inference.
        seed: parameter-initialization seed.
    """

    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ff_dim: int = 128
    summary_hidden: int = 48
    decoder_hidden: int = 96
    pointer_hidden: int = 64
    dropout: float = 0.1
    word_dropout: float = 0.1
    vocab_size: int = 2500
    max_decode_steps: int = 80
    seed: int = 1234


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters.

    The paper fine-tunes BERT with 2e-5 / trains the decoder with 1e-3 and
    the connection parameters with 1e-4.  We keep the three parameter
    groups but raise the encoder rate, because our encoder is trained from
    scratch rather than fine-tuned (DESIGN.md records the substitution).

    Attributes:
        epochs: passes over the training split.
        batch_size: gradient-accumulation batch (paper: 20).
        encoder_lr / decoder_lr / connection_lr: per-group Adam rates.
        max_grad_norm: global-norm clip.
        seed: shuffling/dropout seed.
        log_every: progress logging interval (batches); 0 disables.
    """

    epochs: int = 8
    batch_size: int = 16
    encoder_lr: float = 8e-4
    decoder_lr: float = 1e-3
    connection_lr: float = 8e-4
    max_grad_norm: float = 5.0
    seed: int = 99
    log_every: int = 0
