"""String distance metrics.

The paper (Section IV-B2) generates value candidates by scanning the
database for values whose *Damerau-Levenshtein* distance to an extracted
question span is below a threshold, chosen "because of its good trade-off
between accuracy and run time".  We implement:

* :func:`levenshtein` — classic edit distance (insert / delete / substitute),
* :func:`damerau_levenshtein` — adds adjacent transpositions (the metric the
  paper uses),
* :func:`damerau_levenshtein_banded` — Ukkonen-banded O(k·n) variant that
  only fills the 2k+1 diagonal band; exact for distances <= k,
* :func:`jaro_winkler` — a normalized similarity useful for short tokens,
* :func:`normalized_similarity` — 1 - DL/max_len convenience wrapper.

All functions operate on plain strings and are pure; the candidate
generator applies blocking (see :mod:`repro.index.blocking`) before calling
them so the quadratic cost only hits a small candidate pool.
"""

from __future__ import annotations


def levenshtein(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Edit distance between ``a`` and ``b``.

    Args:
        a: first string.
        b: second string.
        max_distance: optional early-exit bound.  When provided and the true
            distance exceeds it, any value ``> max_distance`` may be
            returned (callers should only compare against the bound).

    >>> levenshtein("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if max_distance is not None and abs(len(a) - len(b)) > max_distance:
        return max_distance + 1

    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        row_min = i
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            value = min(
                previous[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                previous[j - 1] + cost,  # substitution
            )
            current.append(value)
            row_min = min(row_min, value)
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        previous = current
    return previous[-1]


def damerau_levenshtein(a: str, b: str, *, max_distance: int | None = None) -> int:
    """Damerau-Levenshtein distance (restricted, with adjacent transpositions).

    >>> damerau_levenshtein("ca", "ac")
    1
    >>> damerau_levenshtein("jfk", "jkf")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if max_distance is not None and abs(len(a) - len(b)) > max_distance:
        return max_distance + 1

    two_back: list[int] | None = None
    one_back = list(range(len(b) + 1))
    for i in range(1, len(a) + 1):
        current = [i]
        row_min = i
        for j in range(1, len(b) + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            value = min(
                one_back[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                one_back[j - 1] + cost,  # substitution
            )
            if (
                two_back is not None
                and j >= 2
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                value = min(value, two_back[j - 2] + 1)  # transposition
            current.append(value)
            row_min = min(row_min, value)
        if max_distance is not None and row_min > max_distance:
            return max_distance + 1
        two_back, one_back = one_back, current
    return one_back[-1]


def damerau_levenshtein_banded(a: str, b: str, *, max_distance: int) -> int:
    """Damerau-Levenshtein distance restricted to the 2k+1 diagonal band.

    Ukkonen's observation: an alignment of cost <= k never strays more
    than k cells from the main diagonal (each unit of |i - j| skew costs
    at least one insertion or deletion), so only O(k·n) cells of the DP
    matrix need to be filled.  The result is exact whenever the true
    distance is <= ``max_distance``; otherwise ``max_distance + 1`` is
    returned (same sentinel contract as :func:`damerau_levenshtein` with
    its early-exit bound).

    >>> damerau_levenshtein_banded("kitten", "sitting", max_distance=3)
    3
    >>> damerau_levenshtein_banded("jfk", "jkf", max_distance=2)
    1
    >>> damerau_levenshtein_banded("abcdef", "uvwxyz", max_distance=2)
    3
    """
    if max_distance < 0:
        raise ValueError(f"max_distance must be >= 0, got {max_distance}")
    if a == b:
        return 0
    k = max_distance
    cap = k + 1
    la, lb = len(a), len(b)
    if abs(la - lb) > k:
        return cap
    if not a or not b:
        longest = max(la, lb)
        return longest if longest <= k else cap

    # Rows are full-length but only cells with |i - j| <= k are computed;
    # everything else stays at the cap sentinel (any value > k behaves
    # identically, so intermediate results are clamped to the cap too).
    two_back: list[int] | None = None
    one_back = [j if j <= k else cap for j in range(lb + 1)]
    for i in range(1, la + 1):
        current = [cap] * (lb + 1)
        if i <= k:
            current[0] = i
        row_min = current[0]
        lo = max(1, i - k)
        hi = min(lb, i + k)
        for j in range(lo, hi + 1):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            value = min(
                one_back[j] + 1,        # deletion
                current[j - 1] + 1,     # insertion
                one_back[j - 1] + cost,  # substitution
            )
            if (
                two_back is not None
                and j >= 2
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                value = min(value, two_back[j - 2] + 1)  # transposition
            if value > cap:
                value = cap
            current[j] = value
            if value < row_min:
                row_min = value
        if row_min > k:
            return cap
        two_back, one_back = one_back, current
    return one_back[lb] if one_back[lb] <= k else cap


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)

    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - match_window)
        hi = min(len(b), i + match_window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = True
                b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0

    transpositions = 0
    j = 0
    for i, matched in enumerate(a_matched):
        if not matched:
            continue
        while not b_matched[j]:
            j += 1
        if a[i] != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2

    return (
        matches / len(a)
        + matches / len(b)
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, *, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix (<= 4 chars).

    >>> jaro_winkler("martha", "marhta") > jaro("martha", "marhta")
    True
    """
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return base + prefix * prefix_scale * (1.0 - base)


def normalized_similarity(a: str, b: str) -> float:
    """``1 - damerau_levenshtein / max(len)`` similarity in [0, 1].

    Case-insensitive, because database values and question spans rarely
    agree in case ("France" vs "france").
    """
    a_low, b_low = a.lower(), b.lower()
    if not a_low and not b_low:
        return 1.0
    longest = max(len(a_low), len(b_low))
    return 1.0 - damerau_levenshtein(a_low, b_low) / longest
