"""Trainable WordPiece-style subword vocabulary.

Paper Section IV-B4: "Each value token is further tokenized in word pieces
using the WordPiece segmentation algorithm.  The input for the encoder is
then a list of pre-trained embeddings, one for each word piece."

Since pre-trained BERT vocabularies are unavailable offline, this module
*trains* a subword vocabulary from a corpus using BPE-style merges and then
encodes unseen text with the standard greedy longest-match-first WordPiece
algorithm.  Continuation pieces carry the usual ``##`` prefix.  The encoder
never fails: any character outside the vocabulary falls back to ``[UNK]``.

Special tokens (ids are stable across training runs):

====== ====
token   id
====== ====
[PAD]    0
[UNK]    1
[CLS]    2
[SEP]    3
[NUM]    4
====== ====
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from pathlib import Path

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
NUM_TOKEN = "[NUM]"

SPECIAL_TOKENS = [PAD_TOKEN, UNK_TOKEN, CLS_TOKEN, SEP_TOKEN, NUM_TOKEN]


class WordPieceVocab:
    """A subword vocabulary with greedy longest-match encoding.

    Use :meth:`train` to build one from a corpus, or construct directly
    from a list of pieces (e.g. loaded from disk).
    """

    def __init__(self, pieces: list[str]):
        for i, special in enumerate(SPECIAL_TOKENS):
            if i >= len(pieces) or pieces[i] != special:
                raise ValueError(
                    "vocabulary must start with the special tokens "
                    f"{SPECIAL_TOKENS}; got {pieces[:len(SPECIAL_TOKENS)]}"
                )
        self._pieces = list(pieces)
        self._piece_to_id = {piece: i for i, piece in enumerate(self._pieces)}
        if len(self._piece_to_id) != len(self._pieces):
            raise ValueError("vocabulary contains duplicate pieces")
        self._max_piece_len = max(
            (len(p.removeprefix("##")) for p in self._pieces), default=1
        )

    # ------------------------------------------------------------------ API

    def __len__(self) -> int:
        return len(self._pieces)

    def __contains__(self, piece: str) -> bool:
        return piece in self._piece_to_id

    @property
    def pad_id(self) -> int:
        return self._piece_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self._piece_to_id[UNK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self._piece_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self._piece_to_id[SEP_TOKEN]

    @property
    def num_id(self) -> int:
        return self._piece_to_id[NUM_TOKEN]

    def piece_id(self, piece: str) -> int:
        """Id of ``piece``, or the ``[UNK]`` id when unknown."""
        return self._piece_to_id.get(piece, self.unk_id)

    def id_to_piece(self, piece_id: int) -> str:
        return self._pieces[piece_id]

    def encode_word(self, word: str) -> list[int]:
        """Encode one word into piece ids with greedy longest-match.

        Numbers are mapped to the single ``[NUM]`` piece so the model
        generalizes over unseen literals; the surface form is preserved
        elsewhere (pointer networks copy values, they are never generated
        from the vocabulary).
        """
        word = word.lower()
        if not word:
            return [self.unk_id]
        if word.replace(".", "", 1).isdigit():
            return [self.num_id]

        ids: list[int] = []
        position = 0
        while position < len(word):
            end = min(len(word), position + self._max_piece_len)
            match_id: int | None = None
            while end > position:
                piece = word[position:end]
                if position > 0:
                    piece = "##" + piece
                found = self._piece_to_id.get(piece)
                if found is not None:
                    match_id = found
                    break
                end -= 1
            if match_id is None:
                # Unknown character: emit [UNK] and move on one character so
                # the rest of the word is still segmented.
                ids.append(self.unk_id)
                position += 1
            else:
                ids.append(match_id)
                position = end
        return ids

    def encode_words(self, words: Iterable[str]) -> list[list[int]]:
        """Encode a sequence of words, one id list per word."""
        return [self.encode_word(word) for word in words]

    # ----------------------------------------------------------- train/save

    @classmethod
    def train(
        cls,
        corpus: Iterable[str],
        *,
        vocab_size: int = 2048,
        min_frequency: int = 2,
    ) -> "WordPieceVocab":
        """Train a subword vocabulary with BPE-style merges.

        Args:
            corpus: iterable of raw words (pre-tokenized; case-insensitive).
            vocab_size: target total vocabulary size (including special
                tokens and single characters).
            min_frequency: merges below this corpus frequency stop training.
        """
        word_counts: Counter[str] = Counter(
            word.lower() for word in corpus if word and word.isalpha()
        )

        # Represent each word as a tuple of pieces; start from characters.
        splits: dict[str, list[str]] = {}
        for word in word_counts:
            pieces = [word[0]] + ["##" + ch for ch in word[1:]]
            splits[word] = pieces

        alphabet = sorted({p for pieces in splits.values() for p in pieces})
        vocab = list(SPECIAL_TOKENS) + alphabet

        def pair_counts() -> Counter[tuple[str, str]]:
            counts: Counter[tuple[str, str]] = Counter()
            for word, pieces in splits.items():
                frequency = word_counts[word]
                for left, right in zip(pieces, pieces[1:]):
                    counts[(left, right)] += frequency
            return counts

        while len(vocab) < vocab_size:
            counts = pair_counts()
            if not counts:
                break
            (left, right), best_count = counts.most_common(1)[0]
            if best_count < min_frequency:
                break
            merged = left + right.removeprefix("##")
            vocab.append(merged)
            for word, pieces in splits.items():
                if len(pieces) < 2:
                    continue
                updated: list[str] = []
                i = 0
                while i < len(pieces):
                    if (
                        i + 1 < len(pieces)
                        and pieces[i] == left
                        and pieces[i + 1] == right
                    ):
                        updated.append(merged)
                        i += 2
                    else:
                        updated.append(pieces[i])
                        i += 1
                splits[word] = updated

        return cls(vocab)

    def save(self, path: str | Path) -> None:
        """Write the vocabulary to a JSON file."""
        Path(path).write_text(json.dumps(self._pieces, indent=0))

    @classmethod
    def load(cls, path: str | Path) -> "WordPieceVocab":
        """Load a vocabulary previously written by :meth:`save`."""
        return cls(json.loads(Path(path).read_text()))
