"""Text utilities: tokenization, stemming, string distances, n-grams,
and a trainable WordPiece-style subword vocabulary."""

from repro.text.distance import (
    damerau_levenshtein,
    jaro,
    jaro_winkler,
    levenshtein,
    normalized_similarity,
)
from repro.text.ngrams import all_ngrams, character_ngrams, ngrams
from repro.text.stemmer import stem, stem_all
from repro.text.tokenizer import (
    Token,
    normalize_whitespace,
    split_identifier,
    tokenize,
    tokenize_words,
)
from repro.text.wordpiece import (
    CLS_TOKEN,
    NUM_TOKEN,
    PAD_TOKEN,
    SEP_TOKEN,
    SPECIAL_TOKENS,
    UNK_TOKEN,
    WordPieceVocab,
)

__all__ = [
    "CLS_TOKEN",
    "NUM_TOKEN",
    "PAD_TOKEN",
    "SEP_TOKEN",
    "SPECIAL_TOKENS",
    "Token",
    "UNK_TOKEN",
    "WordPieceVocab",
    "all_ngrams",
    "character_ngrams",
    "damerau_levenshtein",
    "jaro",
    "jaro_winkler",
    "levenshtein",
    "ngrams",
    "normalize_whitespace",
    "normalized_similarity",
    "split_identifier",
    "stem",
    "stem_all",
    "tokenize",
    "tokenize_words",
]
