"""n-gram generation for value candidate expansion.

Paper Section IV-B2, third approach: for every extracted value with more
than one token, all contiguous sub-sequences are generated as additional
value candidates.  "A value like 'Kennedy International Airport' generates
one trigram, two bigrams, and three single words as value candidates."
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence


def ngrams(tokens: Sequence[str], n: int) -> Iterator[tuple[str, ...]]:
    """Yield every contiguous ``n``-gram of ``tokens``.

    >>> list(ngrams(["a", "b", "c"], 2))
    [('a', 'b'), ('b', 'c')]
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    for start in range(len(tokens) - n + 1):
        yield tuple(tokens[start:start + n])


def all_ngrams(tokens: Sequence[str], *, max_n: int | None = None) -> list[tuple[str, ...]]:
    """All contiguous sub-sequences of ``tokens``, longest first.

    The longest-first ordering matters downstream: the candidate generator
    prefers longer, more specific candidates and deduplicates on insertion.

    >>> [" ".join(g) for g in all_ngrams(["Kennedy", "International", "Airport"])]
    ['Kennedy International Airport', 'Kennedy International', 'International Airport', 'Kennedy', 'International', 'Airport']
    """
    top = len(tokens) if max_n is None else min(max_n, len(tokens))
    result: list[tuple[str, ...]] = []
    for n in range(top, 0, -1):
        result.extend(ngrams(tokens, n))
    return result


def character_ngrams(text: str, n: int) -> list[str]:
    """Character ``n``-grams of ``text`` (used for blocking keys).

    >>> character_ngrams("jfk", 2)
    ['jf', 'fk']
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return [text[i:i + n] for i in range(len(text) - n + 1)]


#: Padding character for :func:`padded_qgrams`; chosen outside the
#: printable range so database values essentially never contain it (and
#: an accidental collision only ever *adds* shared grams, which keeps the
#: q-gram count filter a safe superset).
QGRAM_PAD = "\x00"


def padded_qgrams(text: str, q: int) -> list[str]:
    """Character ``q``-grams of ``text`` padded with ``q - 1`` sentinel
    characters on both sides (the standard q-gram profile for edit-distance
    filtering: a padded string of length ``n`` has exactly ``n + q - 1``
    grams, and one edit operation changes at most ``q`` of them — ``q + 1``
    for an adjacent transposition).

    >>> padded_qgrams("ab", 3) == ["\\x00\\x00a", "\\x00ab", "ab\\x00", "b\\x00\\x00"]
    True
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    pad = QGRAM_PAD * (q - 1)
    padded = pad + text + pad
    return [padded[i:i + q] for i in range(len(padded) - q + 1)]
