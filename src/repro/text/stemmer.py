"""Porter stemmer.

ValueNet's pre-processing (paper Section III-A) applies stemming to question
tokens and schema identifiers and then looks for exact matches between the
stems.  We implement the classic Porter (1980) algorithm from scratch so the
library has no NLP dependencies.

The implementation follows the original five-step description.  It is
deterministic and idempotent for the vocabulary we care about
(``pets`` -> ``pet``, ``owned`` -> ``own``, ``studies`` -> ``studi`` ...).
"""

from __future__ import annotations

from functools import lru_cache

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """Porter's *m*: the number of vowel-consonant sequences in ``stem``."""
    m = 0
    previous_was_vowel = False
    for i in range(len(stem)):
        is_vowel = not _is_consonant(stem, i)
        if previous_was_vowel and not is_vowel:
            m += 1
        previous_was_vowel = is_vowel
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True for a consonant-vowel-consonant ending where the final consonant
    is not w, x or y (Porter's *o* condition)."""
    if len(word) < 3:
        return False
    return (
        _is_consonant(word, len(word) - 3)
        and not _is_consonant(word, len(word) - 2)
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "wxy"
    )


def _replace_suffix(word: str, suffix: str, replacement: str) -> str:
    return word[: len(word) - len(suffix)] + replacement


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return _replace_suffix(word, "sses", "ss")
    if word.endswith("ies"):
        return _replace_suffix(word, "ies", "i")
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return stem + "ee"
        return word

    changed = False
    if word.endswith("ed"):
        stem = word[:-2]
        if _contains_vowel(stem):
            word, changed = stem, True
    elif word.endswith("ing"):
        stem = word[:-3]
        if _contains_vowel(stem):
            word, changed = stem, True

    if changed:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and word[-1] not in "lsz":
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_SUFFIXES = [
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
    ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
    ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
    ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
]

_STEP3_SUFFIXES = [
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
]

_STEP4_SUFFIXES = [
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
]


def _apply_rules(word: str, rules: list[tuple[str, str]], min_measure: int) -> str:
    for suffix, replacement in rules:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > min_measure - 1:
                return stem + replacement
            return word
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if suffix == "ion" and (not stem or stem[-1] not in "st"):
                return word
            if _measure(stem) > 1:
                return stem
            return word
    return word


def _step_5(word: str) -> str:
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem
    if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
        word = word[:-1]
    return word


@lru_cache(maxsize=65536)
def stem(word: str) -> str:
    """Return the Porter stem of ``word`` (lower-cased).

    Words of length <= 2 are returned unchanged apart from lower-casing,
    matching the original algorithm's behaviour.

    >>> stem("owned")
    'own'
    >>> stem("pets")
    'pet'
    """
    word = word.lower()
    if len(word) <= 2 or not word.isalpha():
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _apply_rules(word, _STEP2_SUFFIXES, min_measure=1)
    word = _apply_rules(word, _STEP3_SUFFIXES, min_measure=1)
    word = _step_4(word)
    return _step_5(word)


def stem_all(words: list[str]) -> list[str]:
    """Stem every word in ``words``."""
    return [stem(word) for word in words]
