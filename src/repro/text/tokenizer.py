"""Word-level tokenization for natural language questions and identifiers.

The ValueNet pre-processing operates on simple word tokens: it stems them,
matches them against schema identifiers and database content, and classifies
them into hint categories.  This module provides the deterministic word
tokenizer used throughout the system, plus helpers to split database
identifiers (``home_country`` -> ``["home", "country"]``) so that schema
items can be compared with question tokens.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# A word token is: a decimal number (optionally with a fraction part), a
# run of letters (with optional internal apostrophe: "kennedy's"), or a
# single piece of punctuation.  Quotes are kept as separate tokens so the
# NER heuristics can detect quoted values.
_TOKEN_RE = re.compile(
    r"""
    \d+(?:\.\d+)?          # numbers, incl. decimals
    | [A-Za-z]+(?:'[A-Za-z]+)?   # words, incl. apostrophes
    | [^\sA-Za-z0-9]       # any single punctuation character
    """,
    re.VERBOSE,
)

_IDENTIFIER_SPLIT_RE = re.compile(r"[_\s\-]+")
_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


@dataclass(frozen=True)
class Token:
    """A single token with its character span in the original text.

    Attributes:
        text: the surface form exactly as it appears in the input.
        start: index of the first character in the original string.
        end: index one past the last character in the original string.
    """

    text: str
    start: int
    end: int

    @property
    def lower(self) -> str:
        """The lower-cased surface form."""
        return self.text.lower()

    def is_number(self) -> bool:
        """Whether the token is a decimal number literal."""
        return bool(re.fullmatch(r"\d+(?:\.\d+)?", self.text))

    def is_word(self) -> bool:
        """Whether the token is alphabetic (possibly with an apostrophe)."""
        return bool(re.fullmatch(r"[A-Za-z]+(?:'[A-Za-z]+)?", self.text))

    def is_capitalized(self) -> bool:
        """Whether the token starts with an upper-case letter."""
        return bool(self.text) and self.text[0].isupper()


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text`` into :class:`Token` objects with character spans.

    >>> [t.text for t in tokenize("How many pets?")]
    ['How', 'many', 'pets', '?']
    """
    return [
        Token(match.group(0), match.start(), match.end())
        for match in _TOKEN_RE.finditer(text)
    ]


def tokenize_words(text: str) -> list[str]:
    """Tokenize and return only the surface strings.

    Convenience wrapper for callers that do not need character spans.
    """
    return [token.text for token in tokenize(text)]


def split_identifier(identifier: str) -> list[str]:
    """Split a database identifier into lower-cased word parts.

    Handles snake_case, kebab-case, spaces and camelCase:

    >>> split_identifier("home_country")
    ['home', 'country']
    >>> split_identifier("stuId")
    ['stu', 'id']
    """
    parts: list[str] = []
    for chunk in _IDENTIFIER_SPLIT_RE.split(identifier):
        if not chunk:
            continue
        parts.extend(piece.lower() for piece in _CAMEL_RE.split(chunk) if piece)
    return parts


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return " ".join(text.split())
