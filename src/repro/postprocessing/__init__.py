"""Deterministic post-processing: value formatting and SQL assembly."""

from repro.postprocessing.sql_builder import SqlBuilder
from repro.postprocessing.values import (
    add_like_wildcards,
    coerce_for_column,
    format_values,
)

__all__ = [
    "SqlBuilder",
    "add_like_wildcards",
    "coerce_for_column",
    "format_values",
]
