"""Value formatting (paper Sections III-C and IV-A).

"In the deterministic post-processing step we format the value given the
predicted data type of the column.  If the column is, for example, of the
type text, we add quotes to it.  If it is of the type integer, we make
sure a floating point is not provided.  In the case that the SQL sketch
predicts a Filter action of type like, we further extend the value with
the SQL wildcard character %."

Quoting itself happens in the SQL renderer; this module normalizes the V
payloads in a predicted SemQL tree so the renderer emits the right
literal form.
"""

from __future__ import annotations

from repro.schema.model import Column, ColumnType, Schema
from repro.semql.actions import ActionType, PRODUCTIONS
from repro.semql.tree import SemQLNode


def _production_name(node: SemQLNode) -> str:
    assert node.production is not None
    return PRODUCTIONS[node.action_type][node.production][0]


def coerce_for_column(value: object, column: Column) -> object:
    """Normalize a candidate payload for the column it is compared with."""
    if column.column_type in (ColumnType.NUMBER, ColumnType.BOOLEAN):
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, (int, float)):
            if isinstance(value, float) and value.is_integer():
                return int(value)
            return value
        text = str(value).strip()
        try:
            number = float(text)
        except ValueError:
            return str(value)  # not numeric after all; keep the text
        return int(number) if number.is_integer() else number
    return str(value)


def add_like_wildcards(value: object) -> str:
    """Ensure a LIKE operand carries wildcards ('Ha' -> '%Ha%')."""
    text = str(value)
    if "%" in text:
        return text
    return f"%{text}%"


def format_values(tree: SemQLNode, schema: Schema) -> SemQLNode:
    """Format every V payload in ``tree`` in place (returns the tree).

    Filter values are coerced to the type of the column in the sibling A
    node; LIKE filters get wildcards; Superlative limits become ints.
    """
    for node in tree.walk():
        if node.action_type is ActionType.FILTER:
            name = _production_name(node)
            if name in ("and", "or") or name.endswith("_r"):
                continue
            a_node = node.children[0]
            column_node = a_node.children[0]
            assert column_node.column is not None
            column = column_node.column
            for value_node in node.children[1:]:
                if value_node.action_type is not ActionType.V:
                    continue
                if name in ("like_v", "not_like_v"):
                    value_node.value = add_like_wildcards(value_node.value)
                else:
                    value_node.value = coerce_for_column(value_node.value, column)
        elif node.action_type is ActionType.SUPERLATIVE:
            value_node = node.children[0]
            coerced = coerce_for_column(value_node.value, _int_column())
            value_node.value = coerced
    return tree


def _int_column() -> Column:
    """A synthetic NUMBER column used to coerce LIMIT payloads."""
    return Column("limit", "", ColumnType.NUMBER, natural_name="limit")
