"""SemQL -> executable SQL assembly (the full post-processing step)."""

from __future__ import annotations

from repro.schema.graph import SchemaGraph
from repro.schema.model import Schema
from repro.semql.to_sql import semql_to_query
from repro.semql.tree import SemQLNode
from repro.postprocessing.values import format_values
from repro.sql.ast import Query
from repro.sql.render import SqlRenderer


class SqlBuilder:
    """Deterministic post-processor bound to one schema.

    Combines the three steps of paper Section III-C: value formatting,
    SemQL-to-SQL transformation, and JOIN/ON inference over the PK/FK
    schema graph (inside the renderer).
    """

    def __init__(self, schema: Schema, graph: SchemaGraph | None = None):
        self.schema = schema
        self.graph = graph or SchemaGraph(schema)
        self._renderer = SqlRenderer(self.graph)

    def to_query(self, tree: SemQLNode) -> Query:
        """Format values and lower the tree to a SQL AST."""
        format_values(tree, self.schema)
        return semql_to_query(tree, self.schema)

    def build(self, tree: SemQLNode) -> str:
        """Full SemQL tree -> executable SQL string."""
        return self._renderer.render(self.to_query(tree))

    def render(self, query: Query) -> str:
        """Render an already-lowered AST."""
        return self._renderer.render(query)
