"""Question hints and schema hints (paper Sections III-A1 and III-A2).

The hints are the "prior knowledge" handed to the neural model:

* **Question hints** classify each question token: does its stem match a
  table name, a column name, a value in the database, an aggregation
  keyword, or a superlative keyword?
* **Schema hints** are the inverse: for each table and column, was it
  mentioned in the question exactly, partially, or did a *value candidate*
  get validated inside that column (the ``value candidate match`` class)?

Both are computed with stemming + exact matching only; the paper leaves
embedding-based matching to future work and so do we.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.candidates.heuristics import SUPERLATIVE_KEYWORDS  # noqa: F401  (re-export)
from repro.candidates.types import ValueCandidate
from repro.index.inverted import InvertedIndex
from repro.schema.model import Column, Schema, Table
from repro.text.stemmer import stem
from repro.text.tokenizer import Token

AGGREGATION_KEYWORDS = {
    "many", "number", "count", "total", "sum", "average", "mean", "avg",
    "maximum", "max", "minimum", "min",
}



class QuestionHint(enum.Enum):
    """Per-token classification of the question."""

    NONE = 0
    TABLE = 1
    COLUMN = 2
    VALUE = 3
    AGGREGATION = 4
    SUPERLATIVE = 5


class SchemaHint(enum.Enum):
    """Per-schema-item classification (tables and columns)."""

    NONE = 0
    EXACT_MATCH = 1
    PARTIAL_MATCH = 2
    VALUE_CANDIDATE_MATCH = 3


@dataclass(frozen=True)
class HintedToken:
    """A question token with its hint class."""

    token: Token
    hint: QuestionHint


@dataclass
class SchemaHints:
    """Hints for every table and column of a schema.

    ``column_hints`` is aligned with ``schema.all_columns()`` (the ``*``
    column first); ``table_hints`` with ``schema.tables``.
    """

    table_hints: list[SchemaHint]
    column_hints: list[SchemaHint]


def _stems(words: list[str]) -> set[str]:
    return {stem(word) for word in words}


def compute_question_hints(
    tokens: list[Token],
    schema: Schema,
    index: InvertedIndex | None,
) -> list[HintedToken]:
    """Classify each question token (Fig. 6).

    Priority when several classes apply: value < table < column <
    aggregation/superlative — schema matches are more specific than a
    generic DB-content hit, and function words win over both.
    """
    table_stems = {stem(word) for table in schema.tables for word in table.words}
    column_stems = {
        stem(word) for column in schema.all_columns() for word in column.words
    }

    hinted: list[HintedToken] = []
    for token in tokens:
        lowered = token.lower
        token_stem = stem(lowered)
        hint = QuestionHint.NONE
        if index is not None and (index.contains(lowered) or token.is_number()):
            hint = QuestionHint.VALUE
        if token_stem in table_stems:
            hint = QuestionHint.TABLE
        if token_stem in column_stems:
            hint = QuestionHint.COLUMN
        if lowered in AGGREGATION_KEYWORDS:
            hint = QuestionHint.AGGREGATION
        if lowered in SUPERLATIVE_KEYWORDS:
            hint = QuestionHint.SUPERLATIVE
        hinted.append(HintedToken(token, hint))
    return hinted


def _match_words(item_words: list[str], question_stems: set[str]) -> SchemaHint:
    if not item_words:
        return SchemaHint.NONE
    matched = sum(1 for word in item_words if stem(word) in question_stems)
    if matched == len(item_words):
        return SchemaHint.EXACT_MATCH
    if matched > 0:
        return SchemaHint.PARTIAL_MATCH
    return SchemaHint.NONE


def compute_schema_hints(
    tokens: list[Token],
    schema: Schema,
    candidates: list[ValueCandidate],
) -> SchemaHints:
    """Classify each table and column (Fig. 7).

    A column gets ``VALUE_CANDIDATE_MATCH`` when some validated candidate
    was located in it — that signal beats a partial name match but not an
    exact one (an exactly-mentioned column is the stronger evidence).
    """
    question_stems = {stem(token.lower) for token in tokens}

    candidate_columns: set[tuple[str, str]] = set()
    for candidate in candidates:
        for location in candidate.locations:
            candidate_columns.add((location.table.lower(), location.column.lower()))

    table_hints = [
        _match_words(table.words, question_stems) for table in schema.tables
    ]

    column_hints: list[SchemaHint] = []
    for column in schema.all_columns():
        hint = _match_words(column.words, question_stems)
        if (
            hint is not SchemaHint.EXACT_MATCH
            and not column.is_star()
            and (column.table.lower(), column.name.lower()) in candidate_columns
        ):
            hint = SchemaHint.VALUE_CANDIDATE_MATCH
        column_hints.append(hint)
    return SchemaHints(table_hints=table_hints, column_hints=column_hints)
