"""Pre-processing: question/schema hints and the candidate pipeline."""

from repro.preprocessing.hints import (
    AGGREGATION_KEYWORDS,
    HintedToken,
    QuestionHint,
    SchemaHint,
    SchemaHints,
    SUPERLATIVE_KEYWORDS,
    compute_question_hints,
    compute_schema_hints,
)
from repro.preprocessing.pipeline import PreprocessedQuestion, Preprocessor

__all__ = [
    "AGGREGATION_KEYWORDS",
    "HintedToken",
    "PreprocessedQuestion",
    "Preprocessor",
    "QuestionHint",
    "SchemaHint",
    "SchemaHints",
    "SUPERLATIVE_KEYWORDS",
    "compute_question_hints",
    "compute_schema_hints",
]
