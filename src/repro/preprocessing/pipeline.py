"""The pre-processing stage of the ValueNet architecture (paper Fig. 5).

Given a question and a database, produce everything the neural model
consumes:

1. question tokens with *question hints*,
2. *schema hints* for every table/column,
3. the *value candidate* list (extraction -> generation -> validation for
   ValueNet; the gold value set for ValueNet light).

The same object feeds training (gold values are matched against the
candidate list to produce pointer supervision) and inference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.candidates.generation import CandidateGenerator, GenerationConfig
from repro.candidates.types import ValueCandidate, dedupe_candidates
from repro.candidates.validation import CandidateValidator, ValidationConfig
from repro.db.database import Database
from repro.index.inverted import InvertedIndex
from repro.index.registry import IndexRegistry, get_default_registry
from repro.index.similarity import SimilaritySearcher
from repro.ner.extractor import ValueExtractor
from repro.ner.types import ExtractedValue, SpanKind
from repro.preprocessing.hints import (
    HintedToken,
    SchemaHints,
    compute_question_hints,
    compute_schema_hints,
)
from repro.schema.model import Schema
from repro.text.tokenizer import Token, tokenize


@dataclass
class PreprocessedQuestion:
    """Everything the encoder needs for one question."""

    question: str
    tokens: list[Token]
    hinted_tokens: list[HintedToken]
    schema_hints: SchemaHints
    candidates: list[ValueCandidate]
    extracted: list[ExtractedValue] = field(default_factory=list)

    @property
    def words(self) -> list[str]:
        return [token.text for token in self.tokens]


class Preprocessor:
    """Pre-processing bound to one database.

    The inverted index and similarity searcher come from the process-wide
    :class:`~repro.index.registry.IndexRegistry` (so every preprocessor,
    pipeline and serving runtime for the same database content shares one
    index instead of each rebuilding); each call to :meth:`run` (ValueNet
    mode) or :meth:`run_light` (ValueNet light mode) is then index-backed
    and fast.  Passing an explicit ``index`` bypasses the registry.
    """

    def __init__(
        self,
        database: Database,
        extractor: ValueExtractor | None = None,
        *,
        generation_config: GenerationConfig | None = None,
        validation_config: ValidationConfig | None = None,
        index: InvertedIndex | None = None,
        searcher: SimilaritySearcher | None = None,
        registry: IndexRegistry | None = None,
    ):
        self.database = database
        self.schema: Schema = database.schema
        if index is not None:
            self.index = index
            self._searcher = (
                searcher if searcher is not None else SimilaritySearcher(index)
            )
        else:
            active = registry if registry is not None else get_default_registry()
            entry = active.get(database)
            self.index = entry.index
            self._searcher = entry.searcher
        self._extractor = extractor or ValueExtractor()
        self._generation_config = generation_config
        self._validation_config = validation_config
        self._generator = CandidateGenerator(self._searcher, generation_config)
        self._validator = CandidateValidator(self.index, validation_config)

    @property
    def searcher(self) -> SimilaritySearcher:
        """The shared similarity searcher (for metrics observers)."""
        return self._searcher

    def rebind(
        self,
        index: InvertedIndex,
        searcher: SimilaritySearcher | None = None,
    ) -> None:
        """Adopt a freshly built index/searcher bundle (background refresh).

        Re-reads ``database.schema`` as well, so a refresher that swapped
        a re-introspected schema onto the shared :class:`Database` gets
        hints computed against the new tables/columns.  Callers are
        responsible for serializing against in-flight :meth:`run` calls
        (the serving runtime rebinds under its per-runtime lock).
        """
        self.index = index
        self._searcher = (
            searcher if searcher is not None else SimilaritySearcher(index)
        )
        self.schema = self.database.schema
        self._generator = CandidateGenerator(self._searcher, self._generation_config)
        self._validator = CandidateValidator(self.index, self._validation_config)

    # ------------------------------------------------------ ValueNet mode

    def run(
        self, question: str, timings: dict[str, float] | None = None
    ) -> PreprocessedQuestion:
        """Full ValueNet pre-processing: extract, generate, validate.

        Args:
            question: the NL question.
            timings: optional dict that receives per-stage wall-clock
                seconds under ``preprocessing`` (tokenize + NER + hints)
                and ``value_lookup`` (candidate generation + validation
                against the database) — the split reported in the paper's
                Table II.
        """
        t0 = time.perf_counter()
        tokens = tokenize(question)
        extracted = self._extractor.extract(question)
        words = [token.text for token in tokens]
        t1 = time.perf_counter()
        generated = self._generator.generate(words, extracted)
        quoted = {
            span.text.strip().lower()
            for span in extracted
            if span.kind is SpanKind.QUOTED
        }
        candidates = self._validator.validate(generated, quoted_values=quoted)
        t2 = time.perf_counter()
        result = self._finish(question, tokens, candidates, extracted)
        t3 = time.perf_counter()
        if timings is not None:
            timings["preprocessing"] = (t1 - t0) + (t3 - t2)
            timings["value_lookup"] = t2 - t1
        return result

    # ------------------------------------------------ ValueNet light mode

    def run_light(
        self,
        question: str,
        gold_values: list[object],
        timings: dict[str, float] | None = None,
    ) -> PreprocessedQuestion:
        """ValueNet light pre-processing: gold values arrive as an oracle
        set of options; we only locate them in the database (the encoder
        wants locations) and compute hints.

        Args:
            question: the NL question.
            gold_values: the oracle value options.
            timings: optional dict that receives per-stage wall-clock
                seconds, split the same way :meth:`run` does —
                ``preprocessing`` covers tokenization + hints and
                ``value_lookup`` covers locating the supplied values in
                the index.
        """
        t0 = time.perf_counter()
        tokens = tokenize(question)
        t1 = time.perf_counter()
        candidates = [
            ValueCandidate(value, "gold") for value in gold_values
        ]
        located = []
        for candidate in candidates:
            locations = tuple(sorted(
                self.index.lookup(candidate.value),
                key=lambda loc: (loc.table, loc.column),
            ))
            located.append(candidate.with_locations(locations))
        deduped = dedupe_candidates(located)
        t2 = time.perf_counter()
        result = self._finish(question, tokens, deduped, [])
        t3 = time.perf_counter()
        if timings is not None:
            timings["preprocessing"] = (t1 - t0) + (t3 - t2)
            timings["value_lookup"] = t2 - t1
        return result

    # ------------------------------------------------------------- shared

    def _finish(
        self,
        question: str,
        tokens: list[Token],
        candidates: list[ValueCandidate],
        extracted: list[ExtractedValue],
    ) -> PreprocessedQuestion:
        hinted = compute_question_hints(tokens, self.schema, self.index)
        schema_hints = compute_schema_hints(tokens, self.schema, candidates)
        return PreprocessedQuestion(
            question=question,
            tokens=tokens,
            hinted_tokens=hinted,
            schema_hints=schema_hints,
            candidates=candidates,
            extracted=extracted,
        )
